#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "graph/graph_builder.h"
#include "sampling/alias_table.h"
#include "sampling/distributions.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace cpd {

namespace {

// Themed seed words (mirroring the research areas of the paper's Table 5)
// keep generated topics human-readable in Table-5-style outputs.
const std::vector<std::string> kThemes[kNumThemes] = {
    {"network", "wireless", "sensor", "routing", "protocol", "packet", "router",
     "bandwidth", "latency", "topology", "mobile", "channel", "node", "traffic",
     "mesh", "gateway"},
    {"security", "key", "authentication", "encryption", "attack", "privacy",
     "signature", "cipher", "malware", "intrusion", "firewall", "trust",
     "vulnerability", "secure", "password", "threat"},
    {"circuit", "design", "power", "cmos", "voltage", "chip", "transistor",
     "analog", "layout", "silicon", "frequency", "amplifier", "logic", "gate",
     "fabrication", "wafer"},
    {"parallel", "performance", "memory", "architecture", "cache", "thread",
     "processor", "scheduling", "gpu", "cluster", "distributed", "throughput",
     "pipeline", "core", "synchronization", "speedup"},
    {"service", "web", "mobile", "management", "cloud", "workflow", "soa",
     "composition", "rest", "middleware", "deployment", "orchestration",
     "registry", "discovery", "api", "platform"},
    {"code", "algorithm", "function", "linear", "complexity", "bound", "graph",
     "approximation", "optimization", "matrix", "polynomial", "convex",
     "theorem", "proof", "decoding", "lattice"},
    {"learning", "model", "neural", "classification", "feature", "training",
     "kernel", "deep", "regression", "inference", "bayesian", "clustering",
     "embedding", "gradient", "supervised", "representation"},
    {"data", "database", "search", "query", "index", "storage", "transaction",
     "schema", "join", "sql", "warehouse", "tuple", "relational", "stream",
     "partitioning", "scan"},
    {"software", "engineering", "testing", "repository", "debugging",
     "refactoring", "specification", "requirement", "maintenance", "bug",
     "developer", "agile", "module", "component", "verification", "release"},
    {"image", "video", "rendering", "vision", "segmentation", "texture",
     "shape", "camera", "pixel", "recognition", "tracking", "geometry",
     "illumination", "stereo", "motion", "depth"},
    {"system", "operating", "kernel", "virtualization", "filesystem",
     "scheduler", "container", "hypervisor", "interrupt", "driver", "paging",
     "concurrency", "runtime", "resource", "isolation", "migration"},
    {"language", "text", "semantic", "parsing", "translation", "corpus",
     "syntax", "grammar", "sentiment", "dialogue", "summarization", "entity",
     "discourse", "lexicon", "annotation", "tagging"},
};

// Poisson via Knuth's method (means here are small).
int SamplePoisson(double mean, Rng* rng) {
  const double limit = std::exp(-mean);
  int k = 0;
  double product = rng->NextDoubleOpen();
  while (product > limit) {
    ++k;
    product *= rng->NextDoubleOpen();
  }
  return k;
}

}  // namespace

const std::vector<std::string>& ThemeWords(int theme) {
  CPD_CHECK(theme >= 0 && theme < kNumThemes);
  return kThemes[theme];
}

StatusOr<SynthResult> GenerateSocialGraph(const SynthConfig& config) {
  if (config.num_users < 2) return Status::InvalidArgument("synth: num_users < 2");
  if (config.num_communities < 2) {
    return Status::InvalidArgument("synth: num_communities < 2");
  }
  if (config.num_topics < 2) return Status::InvalidArgument("synth: num_topics < 2");
  if (config.doc_length_min < 2 || config.doc_length_max < config.doc_length_min) {
    return Status::InvalidArgument("synth: bad doc length range");
  }
  if (config.num_time_bins < 2) {
    return Status::InvalidArgument("synth: num_time_bins < 2");
  }

  Rng rng(config.seed);
  const int kc = config.num_communities;
  const int kz = config.num_topics;
  const int kt = config.num_time_bins;
  const size_t n = static_cast<size_t>(config.num_users);

  SynthResult result;
  SynthGroundTruth& truth = result.truth;
  truth.num_communities = kc;
  truth.num_topics = kz;

  // ---- 1. Vocabulary and phi* ----------------------------------------------
  Vocabulary vocab;
  std::vector<std::vector<WordId>> theme_word_ids(kNumThemes);
  for (int theme = 0; theme < kNumThemes; ++theme) {
    for (const std::string& word : kThemes[theme]) {
      theme_word_ids[static_cast<size_t>(theme)].push_back(vocab.GetOrAdd(word));
    }
  }
  std::vector<WordId> hashtag_ids;
  if (config.add_hashtags) {
    for (int z = 0; z < kz; ++z) {
      hashtag_ids.push_back(
          vocab.GetOrAdd("#" + kThemes[z % kNumThemes][static_cast<size_t>(z) %
                                                       kThemes[z % kNumThemes].size()]));
    }
  }
  for (int b = 0; b < config.background_vocab; ++b) {
    vocab.GetOrAdd(StrFormat("term%04d", b));
  }
  const size_t vocab_size = vocab.size();

  truth.phi.assign(static_cast<size_t>(kz), std::vector<double>(vocab_size, 0.0));
  std::vector<AliasTable> phi_samplers;
  phi_samplers.reserve(static_cast<size_t>(kz));
  for (int z = 0; z < kz; ++z) {
    std::vector<double>& phi = truth.phi[static_cast<size_t>(z)];
    const auto& theme_ids = theme_word_ids[static_cast<size_t>(z % kNumThemes)];
    // Themed head: Zipf-decaying 65% of the mass (or 57% with a hashtag).
    const double hashtag_mass = config.add_hashtags ? 0.08 : 0.0;
    double zipf_total = 0.0;
    for (size_t r = 0; r < theme_ids.size(); ++r) {
      zipf_total += 1.0 / static_cast<double>(r + 1);
    }
    for (size_t r = 0; r < theme_ids.size(); ++r) {
      phi[static_cast<size_t>(theme_ids[r])] +=
          (0.65 - hashtag_mass) * (1.0 / static_cast<double>(r + 1)) / zipf_total;
    }
    if (config.add_hashtags) {
      phi[static_cast<size_t>(hashtag_ids[static_cast<size_t>(z)])] += hashtag_mass;
    }
    // Background tail: Zipfian over the filler vocabulary, shifted per topic
    // so tails differ.
    double tail_total = 0.0;
    for (int b = 0; b < config.background_vocab; ++b) {
      tail_total += 1.0 / static_cast<double>(b + 2);
    }
    const size_t background_offset =
        vocab_size - static_cast<size_t>(config.background_vocab);
    for (int b = 0; b < config.background_vocab; ++b) {
      const int shifted = (b + z * 97) % config.background_vocab;
      phi[background_offset + static_cast<size_t>(shifted)] +=
          0.35 * (1.0 / static_cast<double>(b + 2)) / tail_total;
    }
    phi_samplers.emplace_back(phi);
  }

  // ---- 2. Users: memberships, sociability ---------------------------------
  truth.user_community.resize(n);
  truth.pi.assign(n, std::vector<double>(static_cast<size_t>(kc), 0.0));
  truth.sociability.resize(n);
  for (size_t u = 0; u < n; ++u) {
    const int home = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(kc)));
    int secondary = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(kc)));
    if (secondary == home) secondary = (secondary + 1) % kc;
    truth.user_community[u] = home;
    auto& pi = truth.pi[u];
    const double rest =
        (1.0 - config.primary_membership - config.secondary_membership) /
        static_cast<double>(kc);
    for (int c = 0; c < kc; ++c) pi[static_cast<size_t>(c)] = rest;
    pi[static_cast<size_t>(home)] += config.primary_membership;
    pi[static_cast<size_t>(secondary)] += config.secondary_membership;
    truth.sociability[u] = std::exp(0.7 * rng.NextGaussian());
  }

  // Per-community member lists (home users) for link/diffuser sampling.
  std::vector<std::vector<UserId>> members(static_cast<size_t>(kc));
  for (size_t u = 0; u < n; ++u) {
    members[static_cast<size_t>(truth.user_community[u])].push_back(
        static_cast<UserId>(u));
  }
  for (int c = 0; c < kc; ++c) {
    if (members[static_cast<size_t>(c)].empty()) {
      // Tiny configs can leave a community empty; backfill one user.
      const UserId u = static_cast<UserId>(rng.NextUint64(n));
      members[static_cast<size_t>(c)].push_back(u);
    }
  }

  // ---- theta*: a few topics per community ----------------------------------
  truth.theta.assign(static_cast<size_t>(kc),
                     std::vector<double>(static_cast<size_t>(kz), 0.0));
  std::vector<std::vector<int>> community_topics(static_cast<size_t>(kc));
  for (int c = 0; c < kc; ++c) {
    std::vector<int>& topics = community_topics[static_cast<size_t>(c)];
    // Main topic: pairs of communities share one (c and c + kc/2 both lead
    // with topic c mod half-range). Content alone therefore cannot fully
    // separate communities — friendship links are needed to disambiguate,
    // exactly the regime the paper's detection comparison assumes.
    topics.push_back(c % std::max(2, std::min(kz, (kc + 1) / 2)));
    while (static_cast<int>(topics.size()) < config.topics_per_community) {
      const int z = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(kz)));
      if (std::find(topics.begin(), topics.end(), z) == topics.end()) {
        topics.push_back(z);
      }
    }
    auto& theta = truth.theta[static_cast<size_t>(c)];
    for (int z = 0; z < kz; ++z) theta[static_cast<size_t>(z)] = 0.02;
    double mass = 0.9;
    for (size_t r = 0; r < topics.size(); ++r) {
      const double share = mass * (r + 1 == topics.size()
                                       ? 1.0
                                       : 0.55);  // Geometric-ish decay.
      theta[static_cast<size_t>(topics[r])] += share;
      mass -= share;
    }
    NormalizeInPlace(&theta);
  }

  // ---- topic popularity waves ----------------------------------------------
  truth.topic_wave.assign(static_cast<size_t>(kt),
                          std::vector<double>(static_cast<size_t>(kz), 0.0));
  std::vector<std::vector<double>> wave_of_topic(static_cast<size_t>(kz));
  for (int z = 0; z < kz; ++z) {
    const double peak =
        static_cast<double>(rng.NextUint64(static_cast<uint64_t>(kt)));
    const double width = 1.5 + 3.0 * rng.NextDouble();
    std::vector<double> wave(static_cast<size_t>(kt));
    for (int t = 0; t < kt; ++t) {
      const double d = (static_cast<double>(t) - peak) / width;
      wave[static_cast<size_t>(t)] =
          0.25 + std::exp(-config.wave_sharpness * d * d);
    }
    NormalizeInPlace(&wave);
    wave_of_topic[static_cast<size_t>(z)] = wave;
    for (int t = 0; t < kt; ++t) {
      truth.topic_wave[static_cast<size_t>(t)][static_cast<size_t>(z)] =
          wave[static_cast<size_t>(t)];
    }
  }
  std::vector<AliasTable> wave_samplers;
  wave_samplers.reserve(static_cast<size_t>(kz));
  for (int z = 0; z < kz; ++z) wave_samplers.emplace_back(wave_of_topic[static_cast<size_t>(z)]);

  // ---- 3. Friendship links --------------------------------------------------
  GraphBuilder builder;
  builder.SetNumUsers(n);
  builder.SetVocabulary(vocab);

  // Followers accrue superlinearly in sociability (s^2) while out-degree
  // grows only linearly below, so the *popularity ratio* of Fig. 5(a) —
  // followers / followees — genuinely increases with sociability.
  std::vector<double> follow_weight(n);
  for (size_t u = 0; u < n; ++u) {
    follow_weight[u] = truth.sociability[u] * truth.sociability[u];
  }
  AliasTable global_target(follow_weight);
  std::vector<AliasTable> community_target;
  community_target.reserve(static_cast<size_t>(kc));
  for (int c = 0; c < kc; ++c) {
    std::vector<double> weights;
    weights.reserve(members[static_cast<size_t>(c)].size());
    for (UserId u : members[static_cast<size_t>(c)]) {
      weights.push_back(follow_weight[static_cast<size_t>(u)]);
    }
    community_target.emplace_back(weights);
  }

  for (size_t u = 0; u < n; ++u) {
    const int out_degree =
        1 + SamplePoisson(std::max(0.5, config.avg_friend_degree *
                                            (0.5 + 0.5 * truth.sociability[u]) -
                                        1.0),
                          &rng);
    const int home = truth.user_community[u];
    for (int k = 0; k < out_degree; ++k) {
      UserId v;
      if (rng.NextDouble() < config.intra_community_fraction) {
        const auto& pool = members[static_cast<size_t>(home)];
        v = pool[community_target[static_cast<size_t>(home)].Sample(&rng)];
      } else {
        v = static_cast<UserId>(global_target.Sample(&rng));
      }
      if (static_cast<size_t>(v) == u) continue;
      builder.AddFriendship(static_cast<UserId>(u), v);
      if (config.symmetric_friendship) builder.AddFriendship(v, static_cast<UserId>(u));
    }
  }

  // ---- 4. Base documents ----------------------------------------------------
  // Parallel truth arrays for every emitted document (base + diffusion docs).
  std::vector<int32_t> doc_topic_truth;
  std::vector<int32_t> doc_community_truth;
  std::vector<int32_t> doc_time_truth;
  std::vector<UserId> doc_user_truth;
  std::vector<WordId> word_buffer;
  auto emit_document = [&](UserId u, int c, int z, int32_t min_time) -> DocId {
    const int length = static_cast<int>(
        rng.NextInt(config.doc_length_min, config.doc_length_max));
    word_buffer.clear();
    for (int k = 0; k < length; ++k) {
      word_buffer.push_back(static_cast<WordId>(
          phi_samplers[static_cast<size_t>(z)].Sample(&rng)));
    }
    // Publication time follows the topic's popularity wave, clamped to
    // respect causality when diffusing an earlier document.
    int32_t time = static_cast<int32_t>(
        wave_samplers[static_cast<size_t>(z)].Sample(&rng));
    if (time < min_time) {
      time = std::min<int32_t>(min_time + static_cast<int32_t>(rng.NextUint64(3)),
                               kt - 1);
    }
    const DocId d = builder.AddTokenizedDocument(u, time, word_buffer);
    CPD_CHECK_NE(d, Corpus::kInvalidDoc);  // doc_length_min >= 2 guarantees this.
    doc_topic_truth.push_back(z);
    doc_community_truth.push_back(c);
    doc_time_truth.push_back(time);
    doc_user_truth.push_back(u);
    return d;
  };

  for (size_t u = 0; u < n; ++u) {
    const double mean =
        std::max(0.5, config.docs_per_user_mean * (0.4 + 0.6 * truth.sociability[u]));
    const int num_docs = 1 + SamplePoisson(mean - 1.0, &rng);
    for (int k = 0; k < num_docs; ++k) {
      const int c = static_cast<int>(SampleCategorical(truth.pi[u], &rng));
      const auto& theta = truth.theta[static_cast<size_t>(c)];
      const int z = static_cast<int>(SampleCategorical(theta, &rng));
      emit_document(static_cast<UserId>(u), c, z, 0);
    }
  }
  const size_t num_base_docs = doc_topic_truth.size();

  // ---- 5. Planted eta* -------------------------------------------------------
  truth.eta.assign(static_cast<size_t>(kc) * static_cast<size_t>(kc) *
                       static_cast<size_t>(kz),
                   1e-4);
  auto eta_at = [&](int c, int c2, int z) -> double& {
    return truth.eta[(static_cast<size_t>(c) * static_cast<size_t>(kc) +
                      static_cast<size_t>(c2)) *
                         static_cast<size_t>(kz) +
                     static_cast<size_t>(z)];
  };
  for (int c = 0; c < kc; ++c) {
    const auto& topics = community_topics[static_cast<size_t>(c)];
    for (size_t r = 0; r < topics.size(); ++r) {
      eta_at(c, c, topics[r]) +=
          config.eta_self_mass / static_cast<double>(topics.size());
    }
    // Cross-community "strong weak ties": c diffuses expert community c' on
    // c''s main topic (e.g. SE cites ML on deep learning).
    const double cross_mass =
        (1.0 - config.eta_self_mass) /
        static_cast<double>(std::max(1, config.cross_ties_per_community));
    for (int tie = 0; tie < config.cross_ties_per_community; ++tie) {
      int c2 = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(kc)));
      if (c2 == c) c2 = (c2 + 1) % kc;
      const int z = community_topics[static_cast<size_t>(c2)].front();
      eta_at(c, c2, z) += cross_mass;
    }
    // Normalize row c over (c', z).
    double total = 0.0;
    for (int c2 = 0; c2 < kc; ++c2) {
      for (int z = 0; z < kz; ++z) total += eta_at(c, c2, z);
    }
    for (int c2 = 0; c2 < kc; ++c2) {
      for (int z = 0; z < kz; ++z) eta_at(c, c2, z) /= total;
    }
  }

  // ---- 6. Diffusion events ---------------------------------------------------
  const size_t target_links = static_cast<size_t>(
      config.diffusion_per_doc * static_cast<double>(num_base_docs));

  // Diffuser choice: membership x (1 + strength * sociability^2). The square
  // makes diffusion volume grow faster than document volume (which is linear
  // in sociability), so *activeness* — diffusions / documents — increases
  // with sociability, the individual factor Fig. 5(a) measures.
  std::vector<AliasTable> diffuser_samplers;
  diffuser_samplers.reserve(static_cast<size_t>(kc));
  for (int c = 0; c < kc; ++c) {
    std::vector<double> weights(n);
    for (size_t u = 0; u < n; ++u) {
      weights[u] = truth.pi[u][static_cast<size_t>(c)] *
                   (1.0 + config.individual_strength * truth.sociability[u] *
                              truth.sociability[u]);
    }
    diffuser_samplers.emplace_back(weights);
  }

  std::vector<double> community_weights(static_cast<size_t>(kc));
  size_t made_links = 0;
  size_t attempts = 0;
  while (made_links < target_links && attempts < target_links * 30 + 100) {
    ++attempts;
    const DocId j = static_cast<DocId>(rng.NextUint64(num_base_docs));
    const size_t js = static_cast<size_t>(j);
    const int zj = doc_topic_truth[js];
    const int cj = doc_community_truth[js];
    const int32_t tj = doc_time_truth[js];
    // Topic-popularity factor: documents on currently-hot topics and by
    // sociable authors are diffused more often.
    const double hot =
        wave_of_topic[static_cast<size_t>(zj)][static_cast<size_t>(tj)] *
        static_cast<double>(kt);
    const double author_soc =
        truth.sociability[static_cast<size_t>(doc_user_truth[js])];
    const double accept_p = (0.25 + 0.75 * std::min(hot, 1.6) / 1.6) *
                            (0.4 + 0.6 * author_soc / (1.0 + author_soc));
    if (!rng.NextBernoulli(accept_p)) continue;

    // Community factor: diffusing community ~ eta*[. -> c_j on z_j].
    for (int c = 0; c < kc; ++c) {
      community_weights[static_cast<size_t>(c)] = eta_at(c, cj, zj) + 1e-6;
    }
    const int c_diff =
        static_cast<int>(SampleCategorical(community_weights, &rng));
    const UserId u = static_cast<UserId>(
        diffuser_samplers[static_cast<size_t>(c_diff)].Sample(&rng));

    // The diffusing document keeps the source's topic with probability
    // diffusion_same_topic (retweets are near copies); otherwise its text is
    // from the diffuser's own research area (citing papers read like the
    // citer's field, not the cited one). Either way it appears later.
    int zi = zj;
    if (!rng.NextBernoulli(config.diffusion_same_topic)) {
      zi = static_cast<int>(
          SampleCategorical(truth.theta[static_cast<size_t>(c_diff)], &rng));
    }
    const DocId i = emit_document(u, c_diff, zi, tj);
    builder.AddDiffusion(i, j, doc_time_truth[static_cast<size_t>(i)]);
    ++made_links;
  }

  auto graph = builder.Build(/*drop_isolated_users=*/false);
  if (!graph.ok()) return graph.status();
  result.graph = std::move(*graph);
  truth.doc_topic = std::move(doc_topic_truth);
  truth.doc_community = std::move(doc_community_truth);
  return result;
}

}  // namespace cpd
