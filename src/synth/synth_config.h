#ifndef CPD_SYNTH_SYNTH_CONFIG_H_
#define CPD_SYNTH_SYNTH_CONFIG_H_

/// \file synth_config.h
/// Knobs of the planted-model generator that substitutes for the paper's
/// Twitter (May 2011 crawl) and DBLP (1936-2010 dump) datasets; see
/// DESIGN.md §2 for the substitution argument. The generator plants exactly
/// the structures CPD models: conductance-structured friendships,
/// community-correlated content, and diffusion driven by the community /
/// topic-popularity / individual factors.

#include <cstdint>

namespace cpd {

struct SynthConfig {
  // ----- sizes -----
  int num_users = 400;
  int num_communities = 10;  ///< Planted C*.
  int num_topics = 12;       ///< Planted Z*.
  int background_vocab = 1500;  ///< Filler words beyond the themed lists.
  double docs_per_user_mean = 6.0;
  int doc_length_min = 4;
  int doc_length_max = 10;
  int num_time_bins = 24;

  // ----- friendship structure -----
  double avg_friend_degree = 10.0;
  double intra_community_fraction = 0.85;  ///< Fraction of intra-community links.
  bool symmetric_friendship = false;  ///< true for co-authorship (DBLP).

  // ----- community structure -----
  double primary_membership = 0.75;  ///< pi mass on the user's home community.
  double secondary_membership = 0.15;
  int topics_per_community = 3;

  // ----- diffusion structure -----
  double diffusion_per_doc = 0.5;  ///< Target |E| / |D|.
  /// Mass of eta on self-diffusion vs planted cross-community "strong weak
  /// ties" (SE-cites-ML pattern).
  double eta_self_mass = 0.6;
  int cross_ties_per_community = 2;
  /// Strength of the individual factor: probability weight given to
  /// high-sociability users when selecting diffusers.
  double individual_strength = 1.0;
  /// Probability that a diffusing document keeps the source's topic. Near 1
  /// for retweets (near-verbatim copies); lower for citations, where the
  /// citing paper is written in the *citer's* research area (SE cites ML,
  /// but the citing title is about SE). With the remaining probability the
  /// diffusing doc's topic is drawn from the diffuser community's profile.
  double diffusion_same_topic = 0.6;
  /// Topic popularity wave sharpness (higher = burstier topics).
  double wave_sharpness = 2.0;

  // ----- Twitter-isms -----
  bool add_hashtags = false;  ///< Append a topic hashtag to ~30% of docs.

  uint64_t seed = 1234;

  /// Multiplies user count (and therefore docs/links) by `scale`.
  SynthConfig Scaled(double scale) const {
    SynthConfig scaled = *this;
    scaled.num_users = static_cast<int>(static_cast<double>(num_users) * scale);
    if (scaled.num_users < 20) scaled.num_users = 20;
    return scaled;
  }

  /// Twitter-like preset: many short docs per user, directed follows,
  /// hashtags, bursty topics, diverse per-user content.
  static SynthConfig TwitterLike();

  /// DBLP-like preset: fewer docs (papers) per user, symmetric co-author
  /// links, citation-heavy diffusion, yearly bins, users focused on one
  /// topic area (lower topic diversity, which the paper credits for DBLP's
  /// larger parallel speedup).
  static SynthConfig DBLPLike();
};

}  // namespace cpd

#endif  // CPD_SYNTH_SYNTH_CONFIG_H_
