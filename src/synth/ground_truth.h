#ifndef CPD_SYNTH_GROUND_TRUTH_H_
#define CPD_SYNTH_GROUND_TRUTH_H_

/// \file ground_truth.h
/// The planted parameters kept alongside a generated graph, enabling
/// recovery tests (NMI against planted communities) and factor-correlation
/// case studies (Fig. 5).

#include <vector>

namespace cpd {

struct SynthGroundTruth {
  int num_communities = 0;
  int num_topics = 0;

  /// Home community of each user.
  std::vector<int> user_community;

  /// Planted membership pi*_u (num_users x C*).
  std::vector<std::vector<double>> pi;

  /// Planted content profiles theta*_c (C* x Z*).
  std::vector<std::vector<double>> theta;

  /// Planted word distributions phi*_z (Z* x V) — stored sparse-free.
  std::vector<std::vector<double>> phi;

  /// Planted diffusion profile eta*_{c,c',z} (C* x C* x Z*, rows normalized).
  std::vector<double> eta;

  /// Planted topic popularity waves (T x Z*, column-stochastic per topic).
  std::vector<std::vector<double>> topic_wave;

  /// Planted per-user sociability score driving the individual factor.
  std::vector<double> sociability;

  /// Per-document planted labels (parallel to the graph's documents,
  /// including the documents created by diffusion events).
  std::vector<int32_t> doc_topic;
  std::vector<int32_t> doc_community;

  double EtaAt(int c, int c2, int z) const {
    return eta[(static_cast<size_t>(c) * static_cast<size_t>(num_communities) +
                static_cast<size_t>(c2)) *
                   static_cast<size_t>(num_topics) +
               static_cast<size_t>(z)];
  }
};

}  // namespace cpd

#endif  // CPD_SYNTH_GROUND_TRUTH_H_
