#ifndef CPD_SYNTH_QUERIES_H_
#define CPD_SYNTH_QUERIES_H_

/// \file queries.h
/// Query extraction for profile-driven community ranking (§6.3.2). The paper
/// selects single terms (hashtags on Twitter, words on DBLP minus the top
/// 1000 frequent ones) with corpus frequency above a threshold; a query's
/// relevant users U*_q are those who mention it in their retweets/citations
/// (documents that are diffusion sources).

#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace cpd {

struct RankingQuery {
  WordId word = kInvalidWord;
  std::vector<char> relevant_users;  ///< U*_q indicator per user.
  size_t num_relevant = 0;
};

struct QueryOptions {
  size_t min_frequency = 20;      ///< Paper: > 100 at full scale.
  size_t max_queries = 50;        ///< Cap for bench runtime.
  bool hashtags_only = false;     ///< Twitter convention.
  size_t skip_top_frequent = 0;   ///< DBLP convention (paper: top 1000).
  size_t min_relevant_users = 3;  ///< Drop degenerate queries.
};

/// Builds queries + ground truth from the graph's diffusing documents.
std::vector<RankingQuery> BuildRankingQueries(const SocialGraph& graph,
                                              const QueryOptions& options,
                                              Rng* rng);

}  // namespace cpd

#endif  // CPD_SYNTH_QUERIES_H_
