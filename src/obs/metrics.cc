#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/json.h"
#include "util/logging.h"

namespace cpd::obs {

namespace {

/// Dense per-thread stripe assignment (round-robin, not hash: with few
/// threads a hash can collide every worker onto one stripe).
size_t StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % Histogram::kStripes;
  return index;
}

void AppendNumber(std::string* out, double value) {
  AppendJsonNumber(out, value);  // Canonical shortest round-trip form.
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeHelpText(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

void AppendExpositionHeader(std::string* out, const std::string& name,
                            const std::string& help, const char* type) {
  out->append("# HELP ");
  out->append(name);
  out->append(" ");
  out->append(EscapeHelpText(help));
  out->append("\n# TYPE ");
  out->append(name);
  out->append(" ");
  out->append(type);
  out->append("\n");
}

void AppendSampleLine(std::string* out, const std::string& name,
                      const Labels& labels, double value) {
  out->append(name);
  out->append(RenderLabels(labels));
  out->append(" ");
  AppendNumber(out, value);
  out->append("\n");
}

const std::vector<double>& Histogram::LatencyBoundsUs() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    // 1.1 growth from 1 us until the bound covers a 60 s observation; the
    // geometric-midpoint representative then errs by at most sqrt(1.1)-1
    // (~4.9%) anywhere in the range.
    for (double bound = 1.0; bound < 60e6 * 1.1; bound *= 1.1) {
      b.push_back(bound);
    }
    return b;
  }();
  return bounds;
}

Histogram::Histogram() : stripes_(std::make_unique<Stripe[]>(kStripes)) {
  const size_t num_buckets = LatencyBoundsUs().size() + 1;
  for (size_t s = 0; s < kStripes; ++s) {
    stripes_[s].buckets = std::vector<std::atomic<uint64_t>>(num_buckets);
  }
}

void Histogram::Record(double value) {
  const std::vector<double>& bounds = LatencyBoundsUs();
  // First bound >= value is the bucket; past the last bound -> +Inf bucket.
  const size_t index = static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  Stripe& stripe = stripes_[StripeIndex()];
  stripe.buckets[index].fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snapshot;
  snapshot.buckets.assign(LatencyBoundsUs().size() + 1, 0);
  for (size_t s = 0; s < kStripes; ++s) {
    const Stripe& stripe = stripes_[s];
    for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
      snapshot.buckets[i] +=
          stripe.buckets[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  for (const uint64_t c : snapshot.buckets) snapshot.count += c;
  return snapshot;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  const std::vector<double>& bounds = LatencyBoundsUs();
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      if (i == 0) return bounds.front() / 2.0;          // (0, b0] bucket.
      if (i == bounds.size()) return bounds.back();     // +Inf bucket.
      return std::sqrt(bounds[i - 1] * bounds[i]);      // Geometric midpoint.
    }
  }
  return bounds.back();
}

void AppendHistogramExposition(std::string* out, const std::string& name,
                               const Labels& labels,
                               const Histogram::Snapshot& snapshot) {
  const std::vector<double>& bounds = Histogram::LatencyBoundsUs();
  uint64_t cumulative = 0;
  Labels bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (size_t i = 0; i < bounds.size(); ++i) {
    cumulative += snapshot.buckets[i];
    std::string le;
    AppendNumber(&le, bounds[i]);
    bucket_labels.back().second = std::move(le);
    AppendSampleLine(out, name + "_bucket", bucket_labels,
                     static_cast<double>(cumulative));
  }
  cumulative += snapshot.buckets.back();
  bucket_labels.back().second = "+Inf";
  AppendSampleLine(out, name + "_bucket", bucket_labels,
                   static_cast<double>(cumulative));
  AppendSampleLine(out, name + "_sum", labels, snapshot.sum);
  AppendSampleLine(out, name + "_count", labels,
                   static_cast<double>(snapshot.count));
}

MetricsRegistry::Child* MetricsRegistry::GetChild(const std::string& name,
                                                  const std::string& help,
                                                  MetricType type,
                                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [family_it, family_inserted] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (family_inserted) {
    family.type = type;
    family.help = help;
  } else {
    CPD_CHECK(family.type == type)
        << "metric family '" << name << "' re-registered with another type";
  }
  auto [child_it, child_inserted] =
      family.children.try_emplace(RenderLabels(labels));
  Child& child = child_it->second;
  if (child_inserted) {
    child.labels = labels;
    switch (type) {
      case MetricType::kCounter:
        child.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        child.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        child.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return &child;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  return GetChild(name, help, MetricType::kCounter, labels)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  return GetChild(name, help, MetricType::kGauge, labels)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const Labels& labels) {
  return GetChild(name, help, MetricType::kHistogram, labels)
      ->histogram.get();
}

uint64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.type != MetricType::kCounter) {
    return 0;
  }
  uint64_t total = 0;
  for (const auto& [key, child] : it->second.children) {
    total += child.counter->value();
  }
  return total;
}

std::map<std::string, uint64_t> MetricsRegistry::CounterByLabel(
    const std::string& name) const {
  std::map<std::string, uint64_t> out;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.type != MetricType::kCounter) {
    return out;
  }
  for (const auto& [key, child] : it->second.children) {
    if (child.labels.empty()) continue;
    out[child.labels.front().second] = child.counter->value();
  }
  return out;
}

std::vector<std::string> MetricsRegistry::FamilyNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  names.reserve(families_.size());
  for (const auto& [name, family] : families_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::ExpositionText() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    switch (family.type) {
      case MetricType::kCounter:
        AppendExpositionHeader(&out, name, family.help, "counter");
        for (const auto& [key, child] : family.children) {
          AppendSampleLine(&out, name, child.labels,
                           static_cast<double>(child.counter->value()));
        }
        break;
      case MetricType::kGauge:
        AppendExpositionHeader(&out, name, family.help, "gauge");
        for (const auto& [key, child] : family.children) {
          AppendSampleLine(&out, name, child.labels, child.gauge->value());
        }
        break;
      case MetricType::kHistogram:
        AppendExpositionHeader(&out, name, family.help, "histogram");
        for (const auto& [key, child] : family.children) {
          AppendHistogramExposition(&out, name, child.labels,
                                    child.histogram->Snap());
        }
        break;
    }
  }
  return out;
}

MetricsRegistry* DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace cpd::obs
