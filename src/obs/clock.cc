#include "obs/clock.h"

#include <atomic>
#include <chrono>

namespace cpd::obs {

namespace {
std::atomic<ClockFn> g_clock{nullptr};
}  // namespace

int64_t NowMicros() {
  const ClockFn clock = g_clock.load(std::memory_order_relaxed);
  if (clock != nullptr) return clock();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetClockForTest(ClockFn clock) {
  g_clock.store(clock, std::memory_order_relaxed);
}

}  // namespace cpd::obs
