#ifndef CPD_OBS_METRICS_H_
#define CPD_OBS_METRICS_H_

/// \file metrics.h
/// Dependency-free metrics registry: typed Counter / Gauge / Histogram
/// handles grouped into labeled families, rendered as Prometheus text
/// exposition (GET /metricsz) and queried for the /statsz JSON view.
///
/// Design points (docs/OBSERVABILITY.md covers the operator view):
///   - Handles are registered once (GetCounter/GetGauge/GetHistogram take a
///     registration mutex) and then recorded through raw pointers; the hot
///     path is one relaxed atomic add, no locks, no allocation.
///   - Histograms use one fixed log-spaced bucket layout (growth factor 1.1
///     from 1 us to ~60 s, ~190 buckets), so any two histograms are
///     mergeable bucket-by-bucket and percentiles reconstructed from bucket
///     midpoints carry <= ~5% relative error (sqrt(1.1) - 1). Counts live
///     in per-stripe atomic shards (threads hash to stripes) summed only at
///     scrape time, keeping concurrent writers off each other's cache
///     lines; values below the first bound report the representative
///     first_bound/2, so a nonzero count never yields a 0 percentile.
///   - Durations recorded into histograms should be measured with
///     obs::NowMicros() (src/obs/clock.h): under a frozen test clock every
///     duration is exactly 0 and scrape output is byte-deterministic
///     (tests/io_mode_differential_test.cc pins this across io modes).
///   - A registry is an instantiable object, not a process singleton:
///     ServiceStats owns one per server stack, so tests can build two
///     stacks in one process and compare scrapes. DefaultRegistry() serves
///     code without a natural owner (training counters in cpd_train).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cpd::obs {

/// Label key/value pairs of one child metric ({model="default"}). Order is
/// the registration order and must be consistent within a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(std::string_view value);
/// Prometheus HELP-text escaping: backslash, newline.
std::string EscapeHelpText(std::string_view value);

/// Renders `{k="v",...}` (empty string for no labels), values escaped.
std::string RenderLabels(const Labels& labels);

/// Appends `# HELP name help` + `# TYPE name type` lines.
void AppendExpositionHeader(std::string* out, const std::string& name,
                            const std::string& help, const char* type);

/// Appends one sample line `name{labels} value`. Usable for counters and
/// gauges alike (the caller renders the family header once).
void AppendSampleLine(std::string* out, const std::string& name,
                      const Labels& labels, double value);

/// Monotonic counter. Record path: one relaxed fetch_add.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-bucket histogram (see the file comment for the layout).
class Histogram {
 public:
  /// Concurrent-writer stripes; threads hash onto one by thread id.
  static constexpr size_t kStripes = 4;

  /// The shared bucket upper bounds: 1 * 1.1^i microseconds up to >= 60 s.
  static const std::vector<double>& LatencyBoundsUs();

  Histogram();

  /// Records one observation. Relaxed atomics only; any thread.
  void Record(double value);

  /// Scrape-time merge of the stripes. `buckets[i]` counts observations in
  /// (bounds[i-1], bounds[i]] (bucket 0: <= bounds[0]; the last bucket:
  /// > bounds.back(), the +Inf bucket).
  struct Snapshot {
    std::vector<uint64_t> buckets;  ///< size = bounds.size() + 1.
    uint64_t count = 0;
    double sum = 0.0;

    /// Percentile reconstructed from bucket representatives (geometric
    /// midpoints; first bucket bounds[0]/2, +Inf bucket bounds.back()).
    /// 0.0 when empty. `q` in [0, 1].
    double Percentile(double q) const;
  };
  Snapshot Snap() const;

 private:
  struct Stripe {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<double> sum{0.0};
  };
  std::unique_ptr<Stripe[]> stripes_;
};

/// Appends the full `_bucket`/`_sum`/`_count` exposition of one histogram
/// child (cumulative le counts, le="+Inf" last).
void AppendHistogramExposition(std::string* out, const std::string& name,
                               const Labels& labels,
                               const Histogram::Snapshot& snapshot);

enum class MetricType { kCounter, kGauge, kHistogram };

/// Families of typed metrics keyed by name; children keyed by label values.
/// Registration is mutexed and idempotent (same name + labels returns the
/// same handle); a name re-registered with a different type aborts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Handles are owned by the registry and stable until it is destroyed.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const Labels& labels = {});

  /// Sum of a counter family's children (0 when the family is absent).
  uint64_t CounterTotal(const std::string& name) const;

  /// First-label-value -> value map of a counter family (the per-model
  /// statsz rows; families queried this way carry exactly one label key).
  std::map<std::string, uint64_t> CounterByLabel(const std::string& name) const;

  /// Registered family names (sorted) — the docs-coverage check and tests.
  std::vector<std::string> FamilyNames() const;

  /// Prometheus text exposition of every family, names sorted, children
  /// label-sorted. Deterministic bytes for deterministic metric values.
  std::string ExpositionText() const;

 private:
  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<std::string, Child> children;  ///< Key: RenderLabels(labels).
  };

  Child* GetChild(const std::string& name, const std::string& help,
                  MetricType type, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Process-global registry for instrumentation without a natural owner
/// (training-side counters); server stacks use ServiceStats' own registry.
MetricsRegistry* DefaultRegistry();

}  // namespace cpd::obs

#endif  // CPD_OBS_METRICS_H_
