#ifndef CPD_OBS_TRACE_H_
#define CPD_OBS_TRACE_H_

/// \file trace.h
/// Chrome trace-event recording (the "trace_out" side of src/obs): spans
/// accumulate in memory during a run and serialize as trace-event JSON
/// ({"traceEvents":[...]}), loadable in Perfetto / chrome://tracing.
///
/// The trainer owns one recorder per run (cpd_train --trace_out) and the
/// executors emit into it: per-sweep snapshot / sample / merge / augment
/// spans on the trainer row, per-worker serialize / wait / merge rows for
/// the distributed coordinator. Rows are integer tids named via
/// SetThreadName metadata events — they are *logical* lanes (worker 0, 1,
/// ...), not OS thread ids, so a trace reads as the protocol, not the
/// scheduler. Timestamps come from obs::NowMicros() (injectable clock).
///
/// Recording is mutexed (trace cadence is per sweep / per worker message,
/// never per token) and a null recorder pointer is the universal "tracing
/// off" convention: emit sites guard with `if (trace_ != nullptr)`.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace cpd::obs {

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Names a logical row (rendered once as a "thread_name" metadata event).
  void SetThreadName(int tid, const std::string& name);

  /// One complete span ("ph":"X"). `args` must be a JSON object or null.
  void AddSpan(const std::string& name, int tid, int64_t start_us,
               int64_t duration_us, Json args = Json());

  size_t num_events() const;

  /// {"traceEvents":[...]} — metadata events first, then spans in
  /// recording order.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    int tid = 0;
    int64_t ts = 0;
    int64_t dur = 0;
    Json args;
  };

  mutable std::mutex mutex_;
  std::map<int, std::string> thread_names_;
  std::vector<Event> events_;
};

/// RAII span: stamps start on construction, records on destruction. A null
/// recorder makes it a no-op (the single NowMicros call aside).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string name, int tid);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches one "args" field (shown in the Perfetto span detail pane).
  void AddArg(const std::string& key, Json value);

 private:
  TraceRecorder* recorder_;
  std::string name_;
  int tid_;
  int64_t start_us_;
  Json args_;
};

}  // namespace cpd::obs

#endif  // CPD_OBS_TRACE_H_
