#ifndef CPD_OBS_CLOCK_H_
#define CPD_OBS_CLOCK_H_

/// \file clock.h
/// The one time source of the observability layer (src/obs and everything
/// instrumented with it). Durations recorded into metrics and trace events
/// go through NowMicros() instead of std::chrono directly so tests can
/// freeze or step time: under SetClockForTest the io-mode differential
/// suite gets byte-identical /statsz and /metricsz scrapes (every duration
/// is exactly 0), and the trace tests get monotonic, predictable
/// timestamps.

#include <cstdint>

namespace cpd::obs {

/// Steady-clock microseconds (arbitrary epoch, monotonic), or the injected
/// test clock's value. Safe to call from any thread.
int64_t NowMicros();

/// Installs a replacement clock (captureless function, e.g. a frozen
/// constant or a static step counter). nullptr restores the steady clock.
/// Not synchronized with in-flight NowMicros callers — install before the
/// instrumented code runs (test setup), reset after it stops.
using ClockFn = int64_t (*)();
void SetClockForTest(ClockFn clock);

}  // namespace cpd::obs

#endif  // CPD_OBS_CLOCK_H_
