#include "obs/trace.h"

#include <cstdio>
#include <utility>

#include "obs/clock.h"

namespace cpd::obs {

void TraceRecorder::SetThreadName(int tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[tid] = name;
}

void TraceRecorder::AddSpan(const std::string& name, int tid,
                            int64_t start_us, int64_t duration_us,
                            Json args) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{name, tid, start_us, duration_us, std::move(args)});
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json trace_events = Json::MakeArray();
  for (const auto& [tid, name] : thread_names_) {
    Json args = Json::MakeObject();
    args.Set("name", Json(name));
    Json event = Json::MakeObject();
    event.Set("name", Json("thread_name"));
    event.Set("ph", Json("M"));
    event.Set("pid", Json(1));
    event.Set("tid", Json(tid));
    event.Set("args", std::move(args));
    trace_events.Append(std::move(event));
  }
  for (const Event& span : events_) {
    Json event = Json::MakeObject();
    event.Set("name", Json(span.name));
    event.Set("ph", Json("X"));
    event.Set("pid", Json(1));
    event.Set("tid", Json(span.tid));
    event.Set("ts", Json(span.ts));
    event.Set("dur", Json(span.dur));
    if (span.args.is_object()) {
      event.Set("args", span.args);
    }
    trace_events.Append(std::move(event));
  }
  Json out = Json::MakeObject();
  out.Set("traceEvents", std::move(trace_events));
  return out.Dump();
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int closed = std::fclose(file);
  if (written != json.size() || closed != 0) {
    return Status::IOError("short write to trace output file: " + path);
  }
  return Status::OK();
}

TraceSpan::TraceSpan(TraceRecorder* recorder, std::string name, int tid)
    : recorder_(recorder),
      name_(std::move(name)),
      tid_(tid),
      start_us_(NowMicros()) {}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  recorder_->AddSpan(name_, tid_, start_us_, NowMicros() - start_us_,
                     std::move(args_));
}

void TraceSpan::AddArg(const std::string& key, Json value) {
  if (recorder_ == nullptr) return;
  if (!args_.is_object()) args_ = Json::MakeObject();
  args_.Set(key, std::move(value));
}

}  // namespace cpd::obs
