#include "baselines/pmtlm.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

StatusOr<PmtlmModel> PmtlmModel::Train(const SocialGraph& graph,
                                       const PmtlmConfig& config) {
  LdaConfig lda_config;
  lda_config.num_topics = config.num_topics;
  lda_config.iterations = config.lda_iterations;
  lda_config.seed = config.seed;
  auto lda = LdaModel::Train(graph.corpus(), lda_config);
  if (!lda.ok()) return lda.status();

  PmtlmModel model;
  model.num_topics_ = config.num_topics;
  const size_t num_docs = graph.num_documents();
  model.doc_topics_.resize(num_docs);
  for (size_t d = 0; d < num_docs; ++d) {
    model.doc_topics_[d] = lda->DocumentTopics(static_cast<DocId>(d));
  }

  // User membership = length-weighted average of her documents' topics.
  model.memberships_.assign(graph.num_users(),
                            std::vector<double>(static_cast<size_t>(config.num_topics),
                                                1e-6));
  for (size_t u = 0; u < graph.num_users(); ++u) {
    auto& membership = model.memberships_[u];
    for (DocId d : graph.DocumentsOf(static_cast<UserId>(u))) {
      const auto& theta = model.doc_topics_[static_cast<size_t>(d)];
      for (int z = 0; z < config.num_topics; ++z) {
        membership[static_cast<size_t>(z)] += theta[static_cast<size_t>(z)];
      }
    }
    NormalizeInPlace(&membership);
  }

  // EM for beta_z: with q_z(i,j) ∝ theta_iz theta_jz beta_z over observed
  // links and the Poisson normalizer estimated over random pairing mass
  // (sum_i theta_iz)^2 / D.
  model.beta_.assign(static_cast<size_t>(config.num_topics), 1.0);
  std::vector<double> topic_mass(static_cast<size_t>(config.num_topics), 0.0);
  for (size_t d = 0; d < num_docs; ++d) {
    for (int z = 0; z < config.num_topics; ++z) {
      topic_mass[static_cast<size_t>(z)] +=
          model.doc_topics_[d][static_cast<size_t>(z)];
    }
  }
  const auto& links = graph.diffusion_links();
  if (!links.empty()) {
    std::vector<double> q(static_cast<size_t>(config.num_topics));
    for (int iter = 0; iter < config.em_iterations; ++iter) {
      std::vector<double> expected(static_cast<size_t>(config.num_topics), 0.0);
      for (const DiffusionLink& link : links) {
        const auto& ti = model.doc_topics_[static_cast<size_t>(link.i)];
        const auto& tj = model.doc_topics_[static_cast<size_t>(link.j)];
        double total = 0.0;
        for (int z = 0; z < config.num_topics; ++z) {
          q[static_cast<size_t>(z)] = ti[static_cast<size_t>(z)] *
                                      tj[static_cast<size_t>(z)] *
                                      model.beta_[static_cast<size_t>(z)];
          total += q[static_cast<size_t>(z)];
        }
        if (total <= 0.0) continue;
        for (int z = 0; z < config.num_topics; ++z) {
          expected[static_cast<size_t>(z)] += q[static_cast<size_t>(z)] / total;
        }
      }
      for (int z = 0; z < config.num_topics; ++z) {
        const double mass = topic_mass[static_cast<size_t>(z)];
        const double denom =
            mass * mass / static_cast<double>(num_docs) + 1e-9;
        model.beta_[static_cast<size_t>(z)] =
            expected[static_cast<size_t>(z)] / denom + 1e-9;
      }
    }
  }
  return model;
}

double PmtlmModel::LinkRate(DocId i, DocId j) const {
  const auto& ti = doc_topics_[static_cast<size_t>(i)];
  const auto& tj = doc_topics_[static_cast<size_t>(j)];
  double rate = 0.0;
  for (int z = 0; z < num_topics_; ++z) {
    rate += ti[static_cast<size_t>(z)] * tj[static_cast<size_t>(z)] *
            beta_[static_cast<size_t>(z)];
  }
  return rate;
}

DiffusionScorer PmtlmModel::AsDiffusionScorer() const {
  return [this](DocId i, DocId j, int32_t) { return LinkRate(i, j); };
}

FriendshipScorer PmtlmModel::AsFriendshipScorer() const {
  return [this](UserId u, UserId v) {
    const auto& mu = memberships_[static_cast<size_t>(u)];
    const auto& mv = memberships_[static_cast<size_t>(v)];
    double dot = 0.0;
    for (size_t z = 0; z < mu.size(); ++z) dot += mu[z] * mv[z];
    return Sigmoid(dot);
  };
}

}  // namespace cpd
