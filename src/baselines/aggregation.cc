#include "baselines/aggregation.h"

#include <algorithm>
#include <cmath>

#include "topic/lda.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

StatusOr<AggregatedProfiles> AggregatedProfiles::Build(
    const SocialGraph& graph,
    const std::vector<std::vector<double>>& memberships,
    const AggregationConfig& config) {
  if (memberships.size() != graph.num_users()) {
    return Status::InvalidArgument("aggregation: memberships/users mismatch");
  }
  if (memberships.empty() || memberships.front().empty()) {
    return Status::InvalidArgument("aggregation: empty memberships");
  }

  LdaConfig lda_config;
  lda_config.num_topics = config.num_topics;
  lda_config.iterations = config.lda_iterations;
  lda_config.seed = config.seed;
  auto lda = LdaModel::Train(graph.corpus(), lda_config);
  if (!lda.ok()) return lda.status();

  AggregatedProfiles profiles;
  profiles.num_communities_ = static_cast<int>(memberships.front().size());
  profiles.num_topics_ = config.num_topics;
  profiles.memberships_ = memberships;

  profiles.doc_topics_.resize(graph.num_documents());
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    profiles.doc_topics_[d] = lda->DocumentTopics(static_cast<DocId>(d));
  }
  profiles.phi_.resize(static_cast<size_t>(config.num_topics));
  for (int z = 0; z < config.num_topics; ++z) {
    profiles.phi_[static_cast<size_t>(z)] = lda->TopicWords(z);
  }

  // Eq. 20: theta*_c = sum_u pi*_{u,c} (1/|D_u|) sum_i theta*_{d_ui}.
  const size_t kc = static_cast<size_t>(profiles.num_communities_);
  const size_t kz = static_cast<size_t>(config.num_topics);
  profiles.theta_.assign(kc, std::vector<double>(kz, 1e-9));
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const auto docs = graph.DocumentsOf(static_cast<UserId>(u));
    if (docs.empty()) continue;
    std::vector<double> mean_theta(kz, 0.0);
    for (DocId d : docs) {
      const auto& theta = profiles.doc_topics_[static_cast<size_t>(d)];
      for (size_t z = 0; z < kz; ++z) mean_theta[z] += theta[z];
    }
    const double inv = 1.0 / static_cast<double>(docs.size());
    for (size_t z = 0; z < kz; ++z) mean_theta[z] *= inv;
    const auto& pi = memberships[u];
    for (size_t c = 0; c < kc; ++c) {
      const double weight = pi[c];
      if (weight <= 0.0) continue;
      for (size_t z = 0; z < kz; ++z) {
        profiles.theta_[c][z] += weight * mean_theta[z];
      }
    }
  }
  for (auto& theta : profiles.theta_) NormalizeInPlace(&theta);

  // Eq. 21: eta*_{c,c',z} ∝ sum_{(i,j)} pi*_{u,c} pi*_{v,c'} theta_{d_i,z}
  // theta_{d_j,z}.
  profiles.eta_.assign(kc * kc * kz, config.eta_smoothing);
  for (const DiffusionLink& link : graph.diffusion_links()) {
    const UserId u = graph.document(link.i).user;
    const UserId v = graph.document(link.j).user;
    const auto& pi_u = memberships[static_cast<size_t>(u)];
    const auto& pi_v = memberships[static_cast<size_t>(v)];
    const auto& ti = profiles.doc_topics_[static_cast<size_t>(link.i)];
    const auto& tj = profiles.doc_topics_[static_cast<size_t>(link.j)];
    for (size_t c = 0; c < kc; ++c) {
      if (pi_u[c] < 1e-4) continue;
      for (size_t c2 = 0; c2 < kc; ++c2) {
        const double pair_weight = pi_u[c] * pi_v[c2];
        if (pair_weight < 1e-6) continue;
        for (size_t z = 0; z < kz; ++z) {
          profiles.eta_[(c * kc + c2) * kz + z] += pair_weight * ti[z] * tj[z];
        }
      }
    }
  }
  // Normalize per source community (Definition 5 semantics).
  for (size_t c = 0; c < kc; ++c) {
    double total = 0.0;
    for (size_t k = 0; k < kc * kz; ++k) total += profiles.eta_[c * kc * kz + k];
    if (total <= 0.0) continue;
    for (size_t k = 0; k < kc * kz; ++k) profiles.eta_[c * kc * kz + k] /= total;
  }
  return profiles;
}

std::vector<int> AggregatedProfiles::RankCommunities(
    std::span<const WordId> query) const {
  const size_t kz = static_cast<size_t>(num_topics_);
  std::vector<double> log_g(kz, 0.0);
  for (size_t z = 0; z < kz; ++z) {
    double lg = 0.0;
    for (WordId w : query) {
      lg += std::log(std::max(phi_[z][static_cast<size_t>(w)], 1e-300));
    }
    log_g[z] = lg;
  }
  const double max_log = *std::max_element(log_g.begin(), log_g.end());
  std::vector<double> g(kz);
  for (size_t z = 0; z < kz; ++z) g[z] = std::exp(log_g[z] - max_log);

  std::vector<double> scores(static_cast<size_t>(num_communities_), 0.0);
  for (int c = 0; c < num_communities_; ++c) {
    double score = 0.0;
    for (int c2 = 0; c2 < num_communities_; ++c2) {
      for (size_t z = 0; z < kz; ++z) {
        score += Eta(c, c2, static_cast<int>(z)) *
                 theta_[static_cast<size_t>(c2)][z] * g[z];
      }
    }
    scores[static_cast<size_t>(c)] = score;
  }
  std::vector<int> order(static_cast<size_t>(num_communities_));
  for (int c = 0; c < num_communities_; ++c) order[static_cast<size_t>(c)] = c;
  std::sort(order.begin(), order.end(), [&scores](int a, int b) {
    if (scores[static_cast<size_t>(a)] != scores[static_cast<size_t>(b)]) {
      return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
    }
    return a < b;
  });
  return order;
}

DiffusionScorer AggregatedProfiles::AsDiffusionScorer(
    const SocialGraph& graph) const {
  return [this, &graph](DocId i, DocId j, int32_t) {
    const UserId u = graph.document(i).user;
    const UserId v = graph.document(j).user;
    const auto& pi_u = memberships_[static_cast<size_t>(u)];
    const auto& pi_v = memberships_[static_cast<size_t>(v)];
    // Marginalize the target document's topic under its LDA mixture.
    const auto& tj = doc_topics_[static_cast<size_t>(j)];
    double score = 0.0;
    for (int z = 0; z < num_topics_; ++z) {
      const double pz = tj[static_cast<size_t>(z)];
      if (pz < 1e-6) continue;
      double s = 0.0;
      for (int c = 0; c < num_communities_; ++c) {
        const double left = pi_u[static_cast<size_t>(c)] *
                            theta_[static_cast<size_t>(c)][static_cast<size_t>(z)];
        if (left <= 0.0) continue;
        double inner = 0.0;
        for (int c2 = 0; c2 < num_communities_; ++c2) {
          inner += Eta(c, c2, z) *
                   theta_[static_cast<size_t>(c2)][static_cast<size_t>(z)] *
                   pi_v[static_cast<size_t>(c2)];
        }
        s += left * inner;
      }
      score += pz * s;
    }
    return score;
  };
}

std::vector<std::vector<UserId>> AggregatedProfiles::CommunityUserSets(
    int top_k) const {
  std::vector<std::vector<UserId>> sets(static_cast<size_t>(num_communities_));
  for (size_t u = 0; u < memberships_.size(); ++u) {
    for (size_t c : TopKIndices(memberships_[u], static_cast<size_t>(top_k))) {
      sets[c].push_back(static_cast<UserId>(u));
    }
  }
  return sets;
}

}  // namespace cpd
