#include "baselines/wtm.h"

#include <cmath>

#include "core/diffusion_features.h"
#include "topic/lda.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cpd {

namespace {
double Cosine(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}
}  // namespace

StatusOr<WtmModel> WtmModel::Train(const SocialGraph& graph,
                                   const WtmConfig& config) {
  LdaConfig lda_config;
  lda_config.num_topics = config.num_topics;
  lda_config.iterations = config.lda_iterations;
  lda_config.seed = config.seed;
  auto lda = LdaModel::Train(graph.corpus(), lda_config);
  if (!lda.ok()) return lda.status();

  WtmModel model;
  model.graph_ = &graph;
  model.doc_topics_.resize(graph.num_documents());
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    model.doc_topics_[d] = lda->DocumentTopics(static_cast<DocId>(d));
  }
  model.user_topics_.assign(
      graph.num_users(),
      std::vector<double>(static_cast<size_t>(config.num_topics), 1e-6));
  for (size_t u = 0; u < graph.num_users(); ++u) {
    auto& mix = model.user_topics_[u];
    for (DocId d : graph.DocumentsOf(static_cast<UserId>(u))) {
      const auto& theta = model.doc_topics_[static_cast<size_t>(d)];
      for (size_t z = 0; z < mix.size(); ++z) mix[z] += theta[z];
    }
    NormalizeInPlace(&mix);
  }

  // Training set: all diffusion links + equal sampled negatives.
  Rng rng(config.seed + 1);
  struct Example {
    double x[kNumFeatures];
    double y;
  };
  std::vector<Example> examples;
  const auto& links = graph.diffusion_links();
  examples.reserve(links.size() * 2);
  for (const DiffusionLink& link : links) {
    Example ex;
    ex.y = 1.0;
    model.FillFeatures(graph.document(link.i).user, link.j, ex.x);
    examples.push_back(ex);
  }
  const size_t num_docs = graph.num_documents();
  size_t drawn = 0, attempts = 0;
  while (drawn < links.size() && attempts < links.size() * 20 + 100) {
    ++attempts;
    const DocId i = static_cast<DocId>(rng.NextUint64(num_docs));
    const DocId j = static_cast<DocId>(rng.NextUint64(num_docs));
    if (i == j || graph.HasDiffusion(i, j)) continue;
    if (graph.document(i).user == graph.document(j).user) continue;
    Example ex;
    ex.y = 0.0;
    model.FillFeatures(graph.document(i).user, j, ex.x);
    examples.push_back(ex);
    ++drawn;
  }

  model.weights_.assign(kNumFeatures, 0.0);
  if (!examples.empty()) {
    const double n_inv = 1.0 / static_cast<double>(examples.size());
    for (int iter = 0; iter < config.train_iterations; ++iter) {
      double grad[kNumFeatures] = {0.0};
      for (const Example& ex : examples) {
        double w = 0.0;
        for (int k = 0; k < kNumFeatures; ++k) w += model.weights_[static_cast<size_t>(k)] * ex.x[k];
        const double residual = ex.y - Sigmoid(w);
        for (int k = 0; k < kNumFeatures; ++k) grad[k] += residual * ex.x[k];
      }
      for (int k = 0; k < kNumFeatures; ++k) {
        model.weights_[static_cast<size_t>(k)] +=
            config.learning_rate *
            (grad[k] * n_inv - config.l2 * model.weights_[static_cast<size_t>(k)]);
      }
    }
  }
  return model;
}

void WtmModel::FillFeatures(UserId u, DocId j, double* x) const {
  const UserId v = graph_->document(j).user;
  // User-interest vs source-tweet content affinity; never doc-to-doc text.
  x[0] = Cosine(user_topics_[static_cast<size_t>(u)],
                doc_topics_[static_cast<size_t>(j)]);
  x[1] = Cosine(user_topics_[static_cast<size_t>(u)],
                user_topics_[static_cast<size_t>(v)]);
  x[2] = graph_->HasFriendship(u, v) ? 1.0 : 0.0;
  LinkCaches::ComputePairFeatures(*graph_, u, v, x + 3);
  x[7] = 1.0;
}

double WtmModel::Score(UserId u, DocId j) const {
  double x[kNumFeatures];
  FillFeatures(u, j, x);
  double w = 0.0;
  for (int k = 0; k < kNumFeatures; ++k) w += weights_[static_cast<size_t>(k)] * x[k];
  return Sigmoid(w);
}

DiffusionScorer WtmModel::AsDiffusionScorer() const {
  return [this](DocId i, DocId j, int32_t) {
    return Score(graph_->document(i).user, j);
  };
}

}  // namespace cpd
