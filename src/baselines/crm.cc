#include "baselines/crm.h"

#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace cpd {

StatusOr<CrmModel> CrmModel::Train(const SocialGraph& graph,
                                   const CrmConfig& config) {
  if (config.num_communities < 1) {
    return Status::InvalidArgument("CRM: num_communities < 1");
  }
  const size_t n = graph.num_users();
  const size_t kc = static_cast<size_t>(config.num_communities);

  // User-level weighted adjacency: friendship (symmetrized) + diffusion
  // links collapsed to author pairs.
  std::unordered_map<int64_t, double> adjacency;
  auto add_edge = [&adjacency, n](UserId a, UserId b, double w) {
    if (a == b) return;
    adjacency[static_cast<int64_t>(a) * static_cast<int64_t>(n) + b] += w;
    adjacency[static_cast<int64_t>(b) * static_cast<int64_t>(n) + a] += w;
  };
  for (const FriendshipLink& link : graph.friendship_links()) {
    add_edge(link.u, link.v, 1.0);
  }
  for (const DiffusionLink& link : graph.diffusion_links()) {
    add_edge(graph.document(link.i).user, graph.document(link.j).user,
             config.diffusion_weight);
  }

  CrmModel model;
  model.memberships_.assign(n, std::vector<double>(kc, 0.0));
  Rng rng(config.seed);
  for (auto& psi : model.memberships_) {
    for (double& x : psi) x = 0.5 + rng.NextDouble();
    NormalizeInPlace(&psi);
  }

  // Multiplicative updates maximizing sum_{(u,v)} w_uv log(psi_u . psi_v)
  // (a Poisson block model with identity community affinity): the classic
  // soft-assignment EM for overlapping community factors.
  std::vector<std::vector<double>> next(n, std::vector<double>(kc, 0.0));
  std::vector<double> q(kc);
  for (int iter = 0; iter < config.iterations; ++iter) {
    for (auto& row : next) std::fill(row.begin(), row.end(), 1e-8);
    for (const auto& [key, weight] : adjacency) {
      const size_t u = static_cast<size_t>(key / static_cast<int64_t>(n));
      const size_t v = static_cast<size_t>(key % static_cast<int64_t>(n));
      const auto& pu = model.memberships_[u];
      const auto& pv = model.memberships_[v];
      double total = 0.0;
      for (size_t c = 0; c < kc; ++c) {
        q[c] = pu[c] * pv[c];
        total += q[c];
      }
      if (total <= 0.0) continue;
      for (size_t c = 0; c < kc; ++c) next[u][c] += weight * q[c] / total;
    }
    for (size_t u = 0; u < n; ++u) {
      NormalizeInPlace(&next[u]);
      model.memberships_[u] = next[u];
    }
  }

  model.roles_.resize(n);
  for (size_t u = 0; u < n; ++u) {
    model.roles_[u] = graph.activity(static_cast<UserId>(u)).Activeness();
  }
  return model;
}

FriendshipScorer CrmModel::AsFriendshipScorer() const {
  return [this](UserId u, UserId v) {
    const auto& pu = memberships_[static_cast<size_t>(u)];
    const auto& pv = memberships_[static_cast<size_t>(v)];
    double dot = 0.0;
    for (size_t c = 0; c < pu.size(); ++c) dot += pu[c] * pv[c];
    return Sigmoid(dot);
  };
}

DiffusionScorer CrmModel::AsDiffusionScorer(const SocialGraph& graph) const {
  return [this, &graph](DocId i, DocId j, int32_t) {
    const UserId u = graph.document(i).user;
    const UserId v = graph.document(j).user;
    const auto& pu = memberships_[static_cast<size_t>(u)];
    const auto& pv = memberships_[static_cast<size_t>(v)];
    double dot = 0.0;
    for (size_t c = 0; c < pu.size(); ++c) dot += pu[c] * pv[c];
    return Sigmoid(roles_[static_cast<size_t>(u)] * dot);
  };
}

}  // namespace cpd
