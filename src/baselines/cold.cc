#include "baselines/cold.h"

#include "apps/diffusion_prediction.h"
#include "util/math_util.h"

namespace cpd {

CpdConfig MakeColdCpdConfig(const ColdConfig& config) {
  CpdConfig cpd_config;
  cpd_config.num_communities = config.num_communities;
  cpd_config.num_topics = config.num_topics;
  cpd_config.em_iterations = config.em_iterations;
  cpd_config.seed = config.seed;
  // COLD's structural restrictions (Table 4).
  cpd_config.ablation.model_friendship = false;
  cpd_config.ablation.individual_factor = false;
  cpd_config.ablation.topic_factor = false;
  return cpd_config;
}

StatusOr<ColdModel> ColdModel::Train(const SocialGraph& graph,
                                     const ColdConfig& config) {
  auto model = CpdModel::Train(graph, MakeColdCpdConfig(config));
  if (!model.ok()) return model.status();
  ColdModel cold;
  cold.model_ = std::move(*model);
  return cold;
}

std::vector<std::vector<double>> ColdModel::Memberships() const {
  std::vector<std::vector<double>> memberships(model_.num_users());
  for (size_t u = 0; u < model_.num_users(); ++u) {
    const auto pi = model_.Membership(static_cast<UserId>(u));
    memberships[u].assign(pi.begin(), pi.end());
  }
  return memberships;
}

FriendshipScorer ColdModel::AsFriendshipScorer() const {
  return [this](UserId u, UserId v) {
    const auto& pu = model_.Membership(u);
    const auto& pv = model_.Membership(v);
    double dot = 0.0;
    for (size_t c = 0; c < pu.size(); ++c) dot += pu[c] * pv[c];
    return Sigmoid(dot);
  };
}

DiffusionScorer ColdModel::AsDiffusionScorer(const SocialGraph& graph) const {
  // Shared predictor machinery, but the trained weights have the individual
  // and popularity factors pinned to zero, so scores reduce to COLD's
  // community-topic diffusion strength.
  auto predictor = std::make_shared<DiffusionPredictor>(model_, graph);
  return [predictor, &graph](DocId i, DocId j, int32_t t) {
    const UserId u = graph.document(i).user;
    const UserId v = graph.document(j).user;
    return predictor->Score(u, v, j, t);
  };
}

}  // namespace cpd
