#ifndef CPD_BASELINES_AGGREGATION_H_
#define CPD_BASELINES_AGGREGATION_H_

/// \file aggregation.h
/// The straightforward "first detect, then aggregate" community profilers
/// the paper builds as additional baselines (§6.1): given any detection's
/// memberships pi*_u, run LDA with |Z| topics and aggregate
///   content profile:  theta*_c = sum_u pi*_{u,c} mean_i theta*_{d_ui}  (Eq. 20)
///   diffusion profile: eta*_{c,c',z} ∝ sum_{(i,j) in E} pi*_{u,c} pi*_{v,c'}
///                       theta*_{d_i,z} theta*_{d_j,z}                  (Eq. 21)
/// Combined with CRM and COLD detections this yields the paper's CRM+Agg and
/// COLD+Agg baselines for diffusion prediction, ranking and perplexity.

#include <span>
#include <vector>

#include "eval/evaluator.h"
#include "graph/social_graph.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace cpd {

struct AggregationConfig {
  int num_topics = 20;
  int lda_iterations = 40;
  double eta_smoothing = 1e-6;
  uint64_t seed = 37;
};

/// Profiles produced by detection-then-aggregation.
class AggregatedProfiles {
 public:
  /// \param memberships pi*_u from any community detection (U x C).
  static StatusOr<AggregatedProfiles> Build(
      const SocialGraph& graph,
      const std::vector<std::vector<double>>& memberships,
      const AggregationConfig& config);

  int num_communities() const { return num_communities_; }
  int num_topics() const { return num_topics_; }

  const std::vector<std::vector<double>>& memberships() const {
    return memberships_;
  }
  /// theta*_c (Eq. 20), normalized.
  const std::vector<std::vector<double>>& content_profiles() const {
    return theta_;
  }
  /// LDA phi_z.
  const std::vector<std::vector<double>>& topic_words() const { return phi_; }

  double Eta(int c, int c2, int z) const {
    return eta_[(static_cast<size_t>(c) * static_cast<size_t>(num_communities_) +
                 static_cast<size_t>(c2)) *
                    static_cast<size_t>(num_topics_) +
                static_cast<size_t>(z)];
  }

  /// Eq. 19-style ranking with the aggregated profiles; returns community
  /// ids in ranked order.
  std::vector<int> RankCommunities(std::span<const WordId> query) const;

  /// Diffusion score through the aggregated profiles (no individual or
  /// popularity factor — the aggregation has none).
  DiffusionScorer AsDiffusionScorer(const SocialGraph& graph) const;

  /// Top-k user sets per community (ranking evaluation).
  std::vector<std::vector<UserId>> CommunityUserSets(int top_k = 5) const;

 private:
  AggregatedProfiles() = default;

  int num_communities_ = 0;
  int num_topics_ = 0;
  std::vector<std::vector<double>> memberships_;
  std::vector<std::vector<double>> doc_topics_;  // D x Z (LDA).
  std::vector<std::vector<double>> theta_;       // C x Z.
  std::vector<std::vector<double>> phi_;         // Z x W.
  std::vector<double> eta_;                      // C x C x Z.
};

}  // namespace cpd

#endif  // CPD_BASELINES_AGGREGATION_H_
