#ifndef CPD_BASELINES_CRM_H_
#define CPD_BASELINES_CRM_H_

/// \file crm.h
/// Community Role Model baseline (Han & Tang, KDD 2015 [15]): communities
/// and per-user roles jointly generate friendship and diffusion links; no
/// content/topic modeling and no topic-popularity factor (Table 4).
///
/// Faithful-in-spirit reimplementation (see DESIGN.md §4): user community
/// memberships psi_u are learned from the combined user-level
/// friendship+diffusion adjacency with multiplicative block-model updates
/// (psi psi^T reconstructs the adjacency); the "role" is a per-user activity
/// scalar that multiplies the user's outgoing diffusion propensity. CRM's
/// structural deficits relative to CPD — no topic awareness, no friendship /
/// diffusion heterogeneity in link semantics — are preserved.

#include "eval/evaluator.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace cpd {

struct CrmConfig {
  int num_communities = 20;
  int iterations = 60;
  double diffusion_weight = 1.0;  ///< Weight of diffusion links vs friendship.
  uint64_t seed = 29;
};

class CrmModel {
 public:
  static StatusOr<CrmModel> Train(const SocialGraph& graph, const CrmConfig& config);

  /// psi_u (normalized membership).
  const std::vector<std::vector<double>>& Memberships() const {
    return memberships_;
  }

  /// Per-user role (activity) scalar.
  double Role(UserId u) const { return roles_[static_cast<size_t>(u)]; }

  FriendshipScorer AsFriendshipScorer() const;
  /// Diffusion score: role_u * (psi_u . psi_v) through a sigmoid.
  DiffusionScorer AsDiffusionScorer(const SocialGraph& graph) const;

 private:
  CrmModel() = default;

  std::vector<std::vector<double>> memberships_;  // U x C
  std::vector<double> roles_;                     // U
};

}  // namespace cpd

#endif  // CPD_BASELINES_CRM_H_
