#ifndef CPD_BASELINES_COLD_H_
#define CPD_BASELINES_COLD_H_

/// \file cold.h
/// COmmunity Level Diffusion baseline (Hu, Yao, Cui, Xing, SIGMOD 2015
/// [17]) — the closest prior work to CPD. COLD models content and diffusion
/// links through communities and topics, but (Table 4) it models neither
/// friendship links in detection, nor the individual-preference and
/// topic-popularity factors in diffusion. That makes it exactly a
/// structurally-constrained CPD: we train CPD with those components ablated,
/// which preserves the comparison the paper draws.

#include "core/cpd_model.h"
#include "eval/evaluator.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace cpd {

struct ColdConfig {
  int num_communities = 20;
  int num_topics = 20;
  int em_iterations = 15;
  uint64_t seed = 31;
};

/// Returns the CPD ablation config that realizes COLD.
CpdConfig MakeColdCpdConfig(const ColdConfig& config);

class ColdModel {
 public:
  static StatusOr<ColdModel> Train(const SocialGraph& graph,
                                   const ColdConfig& config);

  /// The underlying constrained CPD model (memberships, theta, eta, phi).
  const CpdModel& model() const { return model_; }

  std::vector<std::vector<double>> Memberships() const;

  FriendshipScorer AsFriendshipScorer() const;
  DiffusionScorer AsDiffusionScorer(const SocialGraph& graph) const;

 private:
  ColdModel() = default;
  CpdModel model_;
};

}  // namespace cpd

#endif  // CPD_BASELINES_COLD_H_
