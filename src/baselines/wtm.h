#ifndef CPD_BASELINES_WTM_H_
#define CPD_BASELINES_WTM_H_

/// \file wtm.h
/// "Whom To Mention" baseline (Wang et al., WWW 2013 [37]): recommends who
/// will diffuse a given tweet from user-content affinity and individual
/// features, with no community structure. Note the semantics: the diffusing
/// *document* does not exist at recommendation time, so features compare the
/// candidate user's aggregated interests with the source document — never
/// document-to-document text (a retweet is a near copy of its source, which
/// would be an oracle feature). Implemented as logistic regression over
///  [cosine(user u's LDA interests, source doc j's LDA topics),
///   cosine(user u's interests, author v's interests),
///   friendship indicator, the four popularity/activeness features, bias],
/// trained on observed diffusion links plus sampled negatives.

#include "eval/evaluator.h"
#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpd {

struct WtmConfig {
  int num_topics = 20;
  int lda_iterations = 40;
  int train_iterations = 120;
  double learning_rate = 0.3;
  double l2 = 1e-4;
  uint64_t seed = 23;
};

class WtmModel {
 public:
  static StatusOr<WtmModel> Train(const SocialGraph& graph, const WtmConfig& config);

  /// Logistic score for user u diffusing document j (authored by its user).
  double Score(UserId u, DocId j) const;

  DiffusionScorer AsDiffusionScorer() const;

  /// Learned weights (for inspection).
  const std::vector<double>& weights() const { return weights_; }

 private:
  WtmModel() = default;
  void FillFeatures(UserId u, DocId j, double* x) const;

  static constexpr int kNumFeatures = 8;  // 2 cosines + friend + 4 user + bias.

  const SocialGraph* graph_ = nullptr;
  std::vector<std::vector<double>> doc_topics_;
  std::vector<std::vector<double>> user_topics_;
  std::vector<double> weights_;
};

}  // namespace cpd

#endif  // CPD_BASELINES_WTM_H_
