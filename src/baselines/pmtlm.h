#ifndef CPD_BASELINES_PMTLM_H_
#define CPD_BASELINES_PMTLM_H_

/// \file pmtlm.h
/// Poisson Mixed-Topic Link Model baseline (Zhu, Yan, Getoor, Moore,
/// KDD 2013 [43]): documents get mixed topic memberships from LDA-style
/// modeling, and a link between documents i and j is Poisson with rate
/// sum_z theta_{iz} theta_{jz} beta_z. As the paper does, we adapt it for
/// community detection / friendship prediction by aggregating each user's
/// document topics into a membership vector. PMTLM is *not applicable* to
/// Twitter-style diffusion (a tweet and its retweet are near-identical
/// texts, §6.3.1) — the benches mirror that restriction.

#include "eval/evaluator.h"
#include "graph/social_graph.h"
#include "topic/lda.h"
#include "util/status.h"

namespace cpd {

struct PmtlmConfig {
  int num_topics = 20;  ///< Doubles as the community count when adapted.
  int lda_iterations = 40;
  int em_iterations = 10;  ///< beta_z re-estimation rounds.
  uint64_t seed = 17;
};

class PmtlmModel {
 public:
  static StatusOr<PmtlmModel> Train(const SocialGraph& graph,
                                    const PmtlmConfig& config);

  /// Poisson link rate sum_z theta_iz theta_jz beta_z.
  double LinkRate(DocId i, DocId j) const;

  /// User memberships (aggregated document topics).
  const std::vector<std::vector<double>>& Memberships() const {
    return memberships_;
  }

  const std::vector<double>& beta() const { return beta_; }

  DiffusionScorer AsDiffusionScorer() const;
  FriendshipScorer AsFriendshipScorer() const;

 private:
  PmtlmModel() = default;

  int num_topics_ = 0;
  std::vector<std::vector<double>> doc_topics_;   // D x Z
  std::vector<std::vector<double>> memberships_;  // U x Z
  std::vector<double> beta_;                      // Z
};

}  // namespace cpd

#endif  // CPD_BASELINES_PMTLM_H_
