#ifndef CPD_UTIL_STATUS_H_
#define CPD_UTIL_STATUS_H_

/// \file status.h
/// RocksDB-style Status / StatusOr error handling. Library entry points that
/// can fail (I/O, config validation, malformed input) return Status instead
/// of throwing; hot loops use CPD_DCHECK from logging.h.

#include <string>
#include <utility>
#include <variant>

namespace cpd {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kResourceExhausted,   ///< Load shed (HTTP 429): retry later.
  kDeadlineExceeded,    ///< Over a time budget (HTTP 504).
  kUnavailable,         ///< Not ready to serve yet (HTTP 503).
};

/// Returns a stable human-readable name for a StatusCode ("OK", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of a fallible operation.
///
/// Usage:
///   Status s = graph.SaveToFile(path);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, like absl::StatusOr).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Calling with an OK status is an error
  /// and is converted to kInternal.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns OK if a value is held, else the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Requires ok(). Accessors for the held value.
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller.
#define CPD_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::cpd::Status _cpd_status = (expr);      \
    if (!_cpd_status.ok()) return _cpd_status; \
  } while (0)

}  // namespace cpd

#endif  // CPD_UTIL_STATUS_H_
