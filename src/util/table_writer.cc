#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpd {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void TableWriter::SetHeader(std::vector<std::string> header) {
  CPD_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TableWriter::AddRow(std::vector<std::string> row) {
  CPD_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddRow(const std::string& label, const std::vector<double>& values,
                         int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TableWriter::ToText() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TableWriter::ToCsv() const {
  std::ostringstream out;
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << escape(row[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TableWriter::Print() const { std::cout << ToText() << std::endl; }

Status TableWriter::WriteCsv(const std::string& path) const {
  return WriteStringToFile(path, ToCsv());
}

}  // namespace cpd
