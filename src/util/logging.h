#ifndef CPD_UTIL_LOGGING_H_
#define CPD_UTIL_LOGGING_H_

/// \file logging.h
/// Minimal leveled logger plus CHECK/DCHECK assertion macros.
///
/// CPD_CHECK(cond) aborts with a message when cond is false, in all builds.
/// CPD_DCHECK(cond) does the same only in debug builds (used in hot loops).

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/status.h"

namespace cpd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a --log_level flag value: "debug" | "info" | "warning" | "error" |
/// "off" (case-sensitive). InvalidArgument on anything else.
StatusOr<LogLevel> ParseLogLevel(const std::string& text);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the failure message and aborts. Used by CHECK macros.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define CPD_LOG(level)                                                     \
  if (::cpd::GetLogLevel() <= ::cpd::LogLevel::k##level)                   \
  ::cpd::internal::LogMessage(::cpd::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

#define CPD_CHECK(condition)                                             \
  if (!(condition))                                                      \
  ::cpd::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()

#define CPD_CHECK_EQ(a, b) CPD_CHECK((a) == (b))
#define CPD_CHECK_NE(a, b) CPD_CHECK((a) != (b))
#define CPD_CHECK_LT(a, b) CPD_CHECK((a) < (b))
#define CPD_CHECK_LE(a, b) CPD_CHECK((a) <= (b))
#define CPD_CHECK_GT(a, b) CPD_CHECK((a) > (b))
#define CPD_CHECK_GE(a, b) CPD_CHECK((a) >= (b))

#ifdef NDEBUG
#define CPD_DCHECK(condition) \
  if (false) ::cpd::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()
#else
#define CPD_DCHECK(condition) CPD_CHECK(condition)
#endif

}  // namespace cpd

#endif  // CPD_UTIL_LOGGING_H_
