#ifndef CPD_UTIL_TABLE_WRITER_H_
#define CPD_UTIL_TABLE_WRITER_H_

/// \file table_writer.h
/// Aligned console tables and CSV dumps. Every benchmark binary uses this to
/// print the rows/series the paper's tables and figures report.

#include <string>
#include <vector>

#include "util/status.h"

namespace cpd {

/// Collects rows of string cells and renders them either as an aligned text
/// table (for the console) or as CSV (for plotting).
class TableWriter {
 public:
  /// \param title Caption printed above the table (e.g. "Figure 4 (Twitter)").
  explicit TableWriter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; its width must match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 4);

  size_t num_rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  /// Renders the aligned table.
  std::string ToText() const;

  /// Renders as CSV (header + rows).
  std::string ToCsv() const;

  /// Prints ToText() to stdout.
  void Print() const;

  /// Writes ToCsv() to a file.
  Status WriteCsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string FormatDouble(double value, int precision = 4);

}  // namespace cpd

#endif  // CPD_UTIL_TABLE_WRITER_H_
