#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpd {

void Json::Set(std::string key, Json value) {
  for (auto& field : fields_) {
    if (field.first == key) {
      field.second = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& field : fields_) {
    if (field.first == key) return &field.second;
  }
  return nullptr;
}

StatusOr<double> Json::GetNumber(std::string_view key, double fallback) const {
  const Json* field = Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a number");
  }
  return field->number();
}

StatusOr<bool> Json::GetBool(std::string_view key, bool fallback) const {
  const Json* field = Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_bool()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a boolean");
  }
  return field->bool_value();
}

StatusOr<std::string> Json::GetString(std::string_view key,
                                      std::string_view fallback) const {
  const Json* field = Find(key);
  if (field == nullptr) return std::string(fallback);
  if (!field->is_string()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a string");
  }
  return field->string_value();
}

StatusOr<double> Json::GetNumber(std::string_view key) const {
  if (Find(key) == nullptr) {
    return Status::NotFound("missing field '" + std::string(key) + "'");
  }
  return GetNumber(key, 0.0);
}

StatusOr<std::string> Json::GetString(std::string_view key) const {
  if (Find(key) == nullptr) {
    return Status::NotFound("missing field '" + std::string(key) + "'");
  }
  return GetString(key, "");
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return items_ == other.items_;
    case Type::kObject:
      return fields_ == other.fields_;
  }
  return false;
}

// ----- writer -----

void AppendJsonString(std::string* out, std::string_view value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);  // UTF-8 bytes pass through untouched.
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  // Integral values inside the exactly-representable range print as plain
  // integers so ids and counts look like ids and counts on the wire.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out->append(buf);
    return;
  }
  // Shortest representation that round-trips: most values need far fewer
  // than the 17 significant digits that always suffice.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  out->append(buf);
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      AppendJsonNumber(out, number_);
      return;
    case Type::kString:
      AppendJsonString(out, string_);
      return;
    case Type::kArray:
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        items_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    case Type::kObject:
      out->push_back('{');
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendJsonString(out, fields_[i].first);
        out->push_back(':');
        fields_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// ----- reader -----

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > Json::kMaxDepth) return Error("document nested too deeply");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      auto text = ParseString();
      if (!text.ok()) return text.status();
      return Json(std::move(*text));
    }
    if (ConsumeLiteral("true")) return Json(true);
    if (ConsumeLiteral("false")) return Json(false);
    if (ConsumeLiteral("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(StrFormat("unexpected character '%c'", c));
  }

  StatusOr<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json object = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a quoted object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      object.Set(std::move(*key), std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json array = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      array.Append(std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  /// Parses the 4 hex digits after "\u"; -1 on malformed input.
  int ParseHex4() {
    if (pos_ + 4 > text_.size()) return -1;
    int value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return -1;
      }
      value = value * 16 + digit;
    }
    pos_ += 4;
    return value;
  }

  static void AppendUtf8(std::string* out, uint32_t code_point) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          const int unit = ParseHex4();
          if (unit < 0) return Error("malformed \\u escape");
          uint32_t code_point = static_cast<uint32_t>(unit);
          if (unit >= 0xD800 && unit <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!ConsumeLiteral("\\u")) {
              return Error("high surrogate without a following \\u escape");
            }
            const int low = ParseHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("high surrogate not followed by a low surrogate");
            }
            code_point = 0x10000 + ((static_cast<uint32_t>(unit) - 0xD800) << 10) +
                         (static_cast<uint32_t>(low) - 0xDC00);
          } else if (unit >= 0xDC00 && unit <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(&out, code_point);
          break;
        }
        default:
          return Error(StrFormat("invalid escape '\\%c'", escape));
      }
    }
  }

  StatusOr<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // Sign consumed; digits must follow.
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // A leading zero must not be followed by more digits.
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        return Error("number has a leading zero");
      }
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("number has a bare decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("number has a malformed exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      return Error("number overflows double: " + token);
    }
    return Json(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> Json::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace cpd
