#ifndef CPD_UTIL_FLAGS_H_
#define CPD_UTIL_FLAGS_H_

/// \file flags.h
/// Strict "--flag value" command-line parsing shared by the tools
/// (cpd_train, cpd_query). Every argument must be a known --flag followed
/// by a value; unknown flags, bare positional arguments, and a trailing
/// flag with no value are typed errors so a mistyped invocation can never
/// be silently half-applied.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "util/status.h"

namespace cpd {

/// Parsed flag -> value map (later occurrences overwrite earlier ones).
using FlagMap = std::map<std::string, std::string>;

/// Parses argv[1..argc) against the known flag names (given without the
/// leading "--"). On failure returns InvalidArgument naming the offending
/// argument; the caller prints its usage text.
StatusOr<FlagMap> ParseFlags(int argc, char** argv,
                             const std::set<std::string>& known_flags);

/// Typed flag accessors shared by the tools so a non-numeric value is an
/// InvalidArgument naming the flag — never a silently-zero atoi. Absent
/// flags return `fallback`; the whole value must parse (no trailing junk).
StatusOr<int64_t> GetInt64Flag(const FlagMap& flags, const std::string& name,
                               int64_t fallback);
StatusOr<uint64_t> GetUint64Flag(const FlagMap& flags, const std::string& name,
                                 uint64_t fallback);

/// Tool-main conveniences: the value, or print the error to stderr, run
/// `usage` (when given), and exit 2 — the one usage-error behavior shared
/// by cpd_train / cpd_query / cpd_serve.
int64_t GetInt64FlagOrExit(const FlagMap& flags, const std::string& name,
                           int64_t fallback,
                           const std::function<void()>& usage = nullptr);
uint64_t GetUint64FlagOrExit(const FlagMap& flags, const std::string& name,
                             uint64_t fallback,
                             const std::function<void()>& usage = nullptr);

}  // namespace cpd

#endif  // CPD_UTIL_FLAGS_H_
