#ifndef CPD_UTIL_FLAGS_H_
#define CPD_UTIL_FLAGS_H_

/// \file flags.h
/// Strict "--flag value" command-line parsing shared by the tools
/// (cpd_train, cpd_query). Every argument must be a known --flag followed
/// by a value; unknown flags, bare positional arguments, and a trailing
/// flag with no value are typed errors so a mistyped invocation can never
/// be silently half-applied.

#include <map>
#include <set>
#include <string>

#include "util/status.h"

namespace cpd {

/// Parsed flag -> value map (later occurrences overwrite earlier ones).
using FlagMap = std::map<std::string, std::string>;

/// Parses argv[1..argc) against the known flag names (given without the
/// leading "--"). On failure returns InvalidArgument naming the offending
/// argument; the caller prints its usage text.
StatusOr<FlagMap> ParseFlags(int argc, char** argv,
                             const std::set<std::string>& known_flags);

}  // namespace cpd

#endif  // CPD_UTIL_FLAGS_H_
