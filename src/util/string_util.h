#ifndef CPD_UTIL_STRING_UTIL_H_
#define CPD_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers used by the text pipeline and file I/O.

#include <string>
#include <string_view>
#include <vector>

namespace cpd {

/// Splits on a single character; consecutive delimiters yield empty tokens
/// unless skip_empty is set.
std::vector<std::string> Split(std::string_view text, char delimiter,
                               bool skip_empty = false);

/// Splits on any whitespace run; never yields empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins parts with the separator between them.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace cpd

#endif  // CPD_UTIL_STRING_UTIL_H_
