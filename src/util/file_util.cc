#include "util/file_util.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace cpd {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << contents;
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  if (in.bad()) return Status::IOError("read failed: " + path);
  return lines;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

std::string CurrentExecutableDir() {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return std::string();
  return exe.parent_path().string();
}

}  // namespace cpd
