#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace cpd {

StatusOr<FlagMap> ParseFlags(int argc, char** argv,
                             const std::set<std::string>& known_flags) {
  FlagMap flags;
  for (int i = 1; i < argc; i += 2) {
    const std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      return Status::InvalidArgument("expected a --flag, got '" + arg + "'");
    }
    const std::string flag = arg.substr(2);
    if (!known_flags.count(flag)) {
      return Status::InvalidArgument("unknown flag --" + flag);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("missing value for --" + flag);
    }
    flags[flag] = argv[i + 1];
  }
  return flags;
}

namespace {

Status BadFlagValue(const std::string& name, const std::string& value) {
  return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                 value + "'");
}

}  // namespace

StatusOr<int64_t> GetInt64Flag(const FlagMap& flags, const std::string& name,
                               int64_t fallback) {
  const auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || end != it->second.c_str() + it->second.size() ||
      errno == ERANGE) {
    return BadFlagValue(name, it->second);
  }
  return static_cast<int64_t>(value);
}

StatusOr<uint64_t> GetUint64Flag(const FlagMap& flags, const std::string& name,
                                 uint64_t fallback) {
  const auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  // strtoull accepts a leading '-' (wrapping); reject it explicitly.
  if (it->second.empty() || it->second[0] == '-') {
    return BadFlagValue(name, it->second);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
  if (end != it->second.c_str() + it->second.size() || errno == ERANGE) {
    return BadFlagValue(name, it->second);
  }
  return static_cast<uint64_t>(value);
}

namespace {

template <typename T>
T FlagOrExit(StatusOr<T> value, const std::function<void()>& usage) {
  if (!value.ok()) {
    std::fprintf(stderr, "%s\n", value.status().message().c_str());
    if (usage) usage();
    std::exit(2);
  }
  return *value;
}

}  // namespace

int64_t GetInt64FlagOrExit(const FlagMap& flags, const std::string& name,
                           int64_t fallback,
                           const std::function<void()>& usage) {
  return FlagOrExit(GetInt64Flag(flags, name, fallback), usage);
}

uint64_t GetUint64FlagOrExit(const FlagMap& flags, const std::string& name,
                             uint64_t fallback,
                             const std::function<void()>& usage) {
  return FlagOrExit(GetUint64Flag(flags, name, fallback), usage);
}

}  // namespace cpd
