#include "util/flags.h"

namespace cpd {

StatusOr<FlagMap> ParseFlags(int argc, char** argv,
                             const std::set<std::string>& known_flags) {
  FlagMap flags;
  for (int i = 1; i < argc; i += 2) {
    const std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      return Status::InvalidArgument("expected a --flag, got '" + arg + "'");
    }
    const std::string flag = arg.substr(2);
    if (!known_flags.count(flag)) {
      return Status::InvalidArgument("unknown flag --" + flag);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("missing value for --" + flag);
    }
    flags[flag] = argv[i + 1];
  }
  return flags;
}

}  // namespace cpd
