#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace cpd {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::ostream& out = (level_ >= LogLevel::kWarning) ? std::cerr : std::clog;
  out << stream_.str() << std::endl;
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace cpd
