#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace cpd {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

/// Small dense per-thread id for log prefixes (std::thread::id is opaque and
/// wide; serving logs want a stable short tag per worker).
int CurrentThreadTag() {
  static std::atomic<int> next_tag{0};
  thread_local const int tag = next_tag.fetch_add(1);
  return tag;
}

/// "MMDD HH:MM:SS.uuuuuu" wall-clock stamp (glog style).
void AppendTimestamp(std::ostream& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000000;
  std::tm parts{};
  localtime_r(&seconds, &parts);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d%02d %02d:%02d:%02d.%06d",
                parts.tm_mon + 1, parts.tm_mday, parts.tm_hour, parts.tm_min,
                parts.tm_sec, static_cast<int>(micros));
  out << buf;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

StatusOr<LogLevel> ParseLogLevel(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warning") return LogLevel::kWarning;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return Status::InvalidArgument(
      "log level must be debug|info|warning|error|off, got '" + text + "'");
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " ";
  AppendTimestamp(stream_);
  stream_ << " t" << CurrentThreadTag() << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::ostream& out = (level_ >= LogLevel::kWarning) ? std::cerr : std::clog;
  out << stream_.str() << std::endl;
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace cpd
