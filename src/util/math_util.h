#ifndef CPD_UTIL_MATH_UTIL_H_
#define CPD_UTIL_MATH_UTIL_H_

/// \file math_util.h
/// Numeric helpers shared across the library: stable log-sum-exp, sigmoid,
/// simplex normalization, summary statistics, Pearson correlation and
/// ordinary-least-squares line fitting (used by the case-study and
/// scalability experiments).

#include <cstddef>
#include <span>
#include <vector>

namespace cpd {

/// Numerically stable logistic function 1 / (1 + exp(-x)).
double Sigmoid(double x);

/// log(1 + exp(x)) without overflow.
double Log1pExp(double x);

/// Stable log(sum_i exp(values[i])). Returns -inf for an empty span.
double LogSumExp(std::span<const double> values);

/// In-place: values[i] <- exp(values[i] - logsumexp) so they sum to 1.
/// No-op on empty input.
void SoftmaxInPlace(std::vector<double>* values);

/// In-place normalization to the probability simplex. If the sum is not
/// positive, resets to the uniform distribution.
void NormalizeInPlace(std::vector<double>* values);

/// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator); 0 when n < 2.
double Variance(std::span<const double> values);

/// Sample standard deviation.
double StdDev(std::span<const double> values);

/// Pearson correlation coefficient in [-1, 1]; 0 when either side is
/// constant or the inputs are shorter than 2. Requires equal lengths.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

/// Result of an ordinary-least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< Coefficient of determination.
};

/// Fits a line through (x, y) pairs. Requires equal lengths >= 2.
LinearFit FitLine(std::span<const double> x, std::span<const double> y);

/// Index of the maximum element; requires non-empty input.
size_t ArgMax(std::span<const double> values);

/// Indices of the top-k values, in descending value order. k is clamped to
/// the input size.
std::vector<size_t> TopKIndices(std::span<const double> values, size_t k);

/// Kahan-compensated sum, used where many small probabilities accumulate.
double StableSum(std::span<const double> values);

}  // namespace cpd

#endif  // CPD_UTIL_MATH_UTIL_H_
