#ifndef CPD_UTIL_WIRE_FORMAT_H_
#define CPD_UTIL_WIRE_FORMAT_H_

/// \file wire_format.h
/// Little-endian binary encode/decode primitives shared by the versioned
/// on-disk artifacts and the distributed-executor wire protocol
/// (src/dist/wire.h). WireWriter appends fixed-width scalars and
/// length-prefixed vectors to a std::string; WireReader consumes them with
/// sticky, typed error reporting: the first over-read latches an OutOfRange
/// status ("truncated"), every later read returns zeros, and callers check
/// status() once at the end — plus ExpectDone() to reject trailing bytes,
/// mirroring the model_artifact reader's error typing.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cpd {

class WireWriter {
 public:
  /// Appends to *out; the caller keeps ownership (must outlive the writer).
  explicit WireWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void I32(int32_t v) { AppendRaw(&v, sizeof(v)); }
  void I64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void F64(double v) { AppendRaw(&v, sizeof(v)); }

  void Bool(bool v) { U8(v ? 1 : 0); }

  /// u64 length prefix + raw bytes.
  void Str(std::string_view s) {
    U64(s.size());
    out_->append(s.data(), s.size());
  }

  /// u64 element-count prefix + packed little-endian elements.
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_arithmetic_v<T>);
    U64(v.size());
    if (!v.empty()) AppendRaw(v.data(), v.size() * sizeof(T));
  }

 private:
  void AppendRaw(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }

  std::string* out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    uint8_t v = 0;
    TakeRaw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    TakeRaw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    TakeRaw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    TakeRaw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    TakeRaw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0.0;
    TakeRaw(&v, sizeof(v));
    return v;
  }
  bool Bool() { return U8() != 0; }

  std::string Str() {
    const uint64_t n = U64();
    if (!CheckAvailable(n, 1)) return std::string();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Reads a u64-count-prefixed packed vector. The count is validated
  /// against the remaining bytes before any allocation, so a corrupt length
  /// prefix is an OutOfRange error, never an OOM resize.
  template <typename T>
  void Vec(std::vector<T>* out) {
    static_assert(std::is_arithmetic_v<T>);
    const uint64_t n = U64();
    if (!CheckAvailable(n, sizeof(T))) {
      out->clear();
      return;
    }
    out->resize(n);
    if (n > 0) TakeRaw(out->data(), n * sizeof(T));
  }

  size_t remaining() const { return data_.size() - pos_; }

  /// OK until the first over-read; then the latched OutOfRange error.
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// OK only if every byte was consumed and no read failed (trailing bytes
  /// are an OutOfRange error, matching the artifact reader).
  Status ExpectDone() const {
    CPD_RETURN_IF_ERROR(status_);
    if (pos_ != data_.size()) {
      return Status::OutOfRange("wire: " + std::to_string(remaining()) +
                                " trailing bytes after payload");
    }
    return Status::OK();
  }

 private:
  bool CheckAvailable(uint64_t count, size_t elem_size) {
    if (!status_.ok()) return false;
    if (count > remaining() / elem_size) {
      status_ = Status::OutOfRange("wire: truncated payload");
      return false;
    }
    return true;
  }

  void TakeRaw(void* dst, size_t n) {
    if (!status_.ok()) return;
    if (n > remaining()) {
      status_ = Status::OutOfRange("wire: truncated payload");
      return;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace cpd

#endif  // CPD_UTIL_WIRE_FORMAT_H_
