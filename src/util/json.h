#ifndef CPD_UTIL_JSON_H_
#define CPD_UTIL_JSON_H_

/// \file json.h
/// Minimal dependency-free JSON value type with a strict reader and a
/// canonical writer — the wire codec of the HTTP serving layer
/// (src/server) and of anything else that needs structured text I/O.
///
/// Reader guarantees (json_test.cc pins them):
///   - full escape handling incl. \uXXXX and UTF-16 surrogate pairs
///     (decoded to UTF-8), raw UTF-8 passed through untouched;
///   - typed errors (InvalidArgument with byte offset) for malformed
///     input, unescaped control characters, non-finite numbers, trailing
///     garbage, and documents nested deeper than kMaxDepth;
///   - numbers parsed as double (the only JSON number type).
/// Writer guarantees:
///   - canonical, deterministic bytes: object fields keep insertion order,
///     integral doubles print without an exponent or decimal point, other
///     numbers use the shortest %g form that round-trips — so two
///     serializations of equal values are byte-identical (the HTTP parity
///     tests rely on this);
///   - NaN/Inf serialize as null (they are unrepresentable in JSON).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace cpd {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Nesting depth the parser accepts (arrays/objects combined).
  static constexpr int kMaxDepth = 100;

  Json() = default;  ///< null
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(int value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(int64_t value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(uint64_t value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}  // NOLINT
  Json(const char* value) : Json(std::string(value)) {}  // NOLINT

  static Json MakeArray() { return Json(Type::kArray); }
  static Json MakeObject() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; the type must match (checked in debug builds).
  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }

  // ----- arrays -----
  size_t size() const {
    return type_ == Type::kObject ? fields_.size() : items_.size();
  }
  const Json& operator[](size_t i) const { return items_[i]; }
  const std::vector<Json>& items() const { return items_; }
  void Append(Json value) { items_.push_back(std::move(value)); }

  // ----- objects (insertion-ordered) -----
  const std::vector<std::pair<std::string, Json>>& fields() const {
    return fields_;
  }
  /// Inserts or overwrites (overwriting keeps the original position).
  void Set(std::string key, Json value);
  /// Field pointer, or nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  // ----- typed object-field helpers (the wire-decoding idiom) -----
  /// Field value as a number; `fallback` when absent; InvalidArgument when
  /// present with a different type.
  StatusOr<double> GetNumber(std::string_view key, double fallback) const;
  StatusOr<bool> GetBool(std::string_view key, bool fallback) const;
  StatusOr<std::string> GetString(std::string_view key,
                                  std::string_view fallback) const;
  /// Required-field variants: NotFound when absent.
  StatusOr<double> GetNumber(std::string_view key) const;
  StatusOr<std::string> GetString(std::string_view key) const;

  /// Serializes to canonical compact JSON (see the file comment).
  std::string Dump() const;

  /// Parses one JSON document; rejects trailing non-whitespace.
  static StatusOr<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  explicit Json(Type type) : type_(type) {}

  void DumpTo(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

/// Appends `value` to `out` with JSON string escaping (quotes included).
void AppendJsonString(std::string* out, std::string_view value);

/// Appends a canonical JSON number (integral doubles without a decimal
/// point, otherwise the shortest round-tripping %g; NaN/Inf become null).
void AppendJsonNumber(std::string* out, double value);

}  // namespace cpd

#endif  // CPD_UTIL_JSON_H_
