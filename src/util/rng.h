#ifndef CPD_UTIL_RNG_H_
#define CPD_UTIL_RNG_H_

/// \file rng.h
/// Fast, reproducible pseudo-random number generation (xoshiro256++ with a
/// SplitMix64 seeder). Every stochastic component in the library takes an Rng
/// so experiments are deterministic given a seed.

#include <cstdint>
#include <limits>

namespace cpd {

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the library prefers the built-in
/// helpers below for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state via SplitMix64 from a single seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in (0, 1) — never exactly 0; safe for log().
  double NextDoubleOpen();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Exponential(1) variate.
  double NextExp();

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  /// Spawns an independent stream (re-seeded from this stream's output);
  /// used to give each thread its own generator.
  Rng Split();

  /// The full serializable generator state: the xoshiro256++ words plus the
  /// polar method's cached second Gaussian. Shipping this (instead of a
  /// seed) is what lets the distributed executor hand a shard's stream to
  /// any worker — or re-dispatch it after a worker dies — and continue the
  /// exact sequence a local executor would have drawn.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State SaveState() const;
  void LoadState(const State& state);

 private:
  uint64_t state_[4];
  // Cached second variate from the polar method.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cpd

#endif  // CPD_UTIL_RNG_H_
