#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace cpd {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (raw + 0.5) / 2^53 in (0, 1).
  return (static_cast<double>(Next64() >> 11) + 0.5) * 0x1.0p-53;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  CPD_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and fast.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CPD_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1ULL));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextExp() { return -std::log(NextDoubleOpen()); }

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng(Next64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::LoadState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace cpd
