#ifndef CPD_UTIL_TIMER_H_
#define CPD_UTIL_TIMER_H_

/// \file timer.h
/// Wall-clock stopwatch used by the scalability benchmarks (Figs. 10-11).

#include <chrono>

namespace cpd {

/// Monotonic stopwatch; starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cpd

#endif  // CPD_UTIL_TIMER_H_
