#include "util/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace cpd {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Log1pExp(double x) {
  if (x > 0.0) return x + std::log1p(std::exp(-x));
  return std::log1p(std::exp(x));
}

double LogSumExp(std::span<const double> values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  const double max_value = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(max_value)) return max_value;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - max_value);
  return max_value + std::log(sum);
}

void SoftmaxInPlace(std::vector<double>* values) {
  if (values->empty()) return;
  const double lse = LogSumExp(*values);
  for (double& v : *values) v = std::exp(v - lse);
}

void NormalizeInPlace(std::vector<double>* values) {
  if (values->empty()) return;
  double sum = 0.0;
  for (double v : *values) sum += v;
  if (sum <= 0.0 || !std::isfinite(sum)) {
    const double uniform = 1.0 / static_cast<double>(values->size());
    std::fill(values->begin(), values->end(), uniform);
    return;
  }
  for (double& v : *values) v /= sum;
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return StableSum(values) / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double mean = Mean(values);
  double accum = 0.0;
  for (double v : values) {
    const double d = v - mean;
    accum += d * d;
  }
  return accum / static_cast<double>(n - 1);
}

double StdDev(std::span<const double> values) { return std::sqrt(Variance(values)); }

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  CPD_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const double mean_x = Mean(x);
  const double mean_y = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit FitLine(std::span<const double> x, std::span<const double> y) {
  CPD_CHECK_EQ(x.size(), y.size());
  CPD_CHECK_GE(x.size(), 2u);
  const size_t n = x.size();
  const double mean_x = Mean(x);
  const double mean_y = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx <= 0.0) {
    fit.intercept = mean_y;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double r = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

size_t ArgMax(std::span<const double> values) {
  CPD_CHECK(!values.empty());
  return static_cast<size_t>(
      std::distance(values.begin(), std::max_element(values.begin(), values.end())));
}

std::vector<size_t> TopKIndices(std::span<const double> values, size_t k) {
  k = std::min(k, values.size());
  std::vector<size_t> indices(values.size());
  std::iota(indices.begin(), indices.end(), size_t{0});
  std::partial_sort(indices.begin(), indices.begin() + static_cast<long>(k),
                    indices.end(), [&values](size_t a, size_t b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  indices.resize(k);
  return indices;
}

double StableSum(std::span<const double> values) {
  double sum = 0.0;
  double compensation = 0.0;
  for (double v : values) {
    const double y = v - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace cpd
