#ifndef CPD_UTIL_FILE_UTIL_H_
#define CPD_UTIL_FILE_UTIL_H_

/// \file file_util.h
/// Whole-file and line-oriented I/O with Status-based error reporting.

#include <string>
#include <vector>

#include "util/status.h"

namespace cpd {

/// Reads the entire file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes (truncates) the file with the given contents.
Status WriteStringToFile(const std::string& path, const std::string& contents);

/// Reads all lines (without trailing newlines).
StatusOr<std::vector<std::string>> ReadLines(const std::string& path);

/// True if the path exists and is a regular file.
bool FileExists(const std::string& path);

/// Directory containing the running executable (via /proc/self/exe), without
/// a trailing slash; empty if it cannot be determined. Tools and tests use
/// it to find sibling binaries (e.g. cpd_worker next to cpd_train).
std::string CurrentExecutableDir();

}  // namespace cpd

#endif  // CPD_UTIL_FILE_UTIL_H_
