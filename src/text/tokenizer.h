#ifndef CPD_TEXT_TOKENIZER_H_
#define CPD_TEXT_TOKENIZER_H_

/// \file tokenizer.h
/// Tweet/title tokenizer reproducing the paper's preprocessing (§6.1):
/// lowercasing, punctuation stripping, stopword + function-word removal
/// (the POS-filter approximation), Porter stemming, hashtag preservation.

#include <string>
#include <string_view>
#include <vector>

namespace cpd {

/// Options controlling the token pipeline.
struct TokenizerOptions {
  bool lowercase = true;
  bool remove_stopwords = true;
  bool remove_function_words = true;  ///< POS-filter approximation.
  bool stem = true;
  bool keep_hashtags = true;  ///< '#tag' survives unstemmed (Twitter queries).
  size_t min_token_length = 2;
};

/// Splits raw text into cleaned tokens according to the options.
/// Hashtags keep their leading '#'; URLs and pure numbers are dropped.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

}  // namespace cpd

#endif  // CPD_TEXT_TOKENIZER_H_
