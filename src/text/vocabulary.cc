#include "text/vocabulary.h"

#include <sstream>

#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpd {

WordId Vocabulary::GetOrAdd(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  const WordId id = static_cast<WordId>(words_.size());
  words_.emplace_back(word);
  frequency_.push_back(0);
  index_.emplace(words_.back(), id);
  return id;
}

WordId Vocabulary::Find(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kInvalidWord : it->second;
}

const std::string& Vocabulary::WordOf(WordId id) const {
  CPD_CHECK_GE(id, 0);
  CPD_CHECK_LT(static_cast<size_t>(id), words_.size());
  return words_[static_cast<size_t>(id)];
}

int64_t Vocabulary::Frequency(WordId id) const {
  CPD_CHECK_GE(id, 0);
  CPD_CHECK_LT(static_cast<size_t>(id), frequency_.size());
  return frequency_[static_cast<size_t>(id)];
}

void Vocabulary::CountOccurrence(WordId id, int64_t delta) {
  CPD_CHECK_GE(id, 0);
  CPD_CHECK_LT(static_cast<size_t>(id), frequency_.size());
  frequency_[static_cast<size_t>(id)] += delta;
}

Status Vocabulary::SaveToFile(const std::string& path) const {
  std::ostringstream out;
  for (size_t i = 0; i < words_.size(); ++i) {
    out << words_[i] << '\t' << frequency_[i] << '\n';
  }
  return WriteStringToFile(path, out.str());
}

StatusOr<Vocabulary> Vocabulary::LoadFromFile(const std::string& path) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  Vocabulary vocab;
  for (const std::string& line : *lines) {
    if (line.empty()) continue;
    const auto parts = Split(line, '\t');
    if (parts.size() != 2) {
      return Status::InvalidArgument("malformed vocabulary line: " + line);
    }
    const WordId id = vocab.GetOrAdd(parts[0]);
    vocab.CountOccurrence(id, std::stoll(parts[1]));
  }
  return vocab;
}

}  // namespace cpd
