#include "text/porter_stemmer.h"

namespace cpd {

namespace {

// Implementation of Porter's algorithm operating on a mutable buffer
// b[0..k]. Follows the reference implementation's structure (steps 1a-5b).
class Stemmer {
 public:
  explicit Stemmer(std::string word) : b_(std::move(word)), k_(static_cast<int>(b_.size()) - 1) {}

  std::string Run() {
    if (k_ <= 1) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_ + 1));
    return b_;
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b[0..j]: number of VC sequences.
  int Measure(int j) const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem(int j) const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int j) const {
    if (j < 1) return false;
    if (b_[static_cast<size_t>(j)] != b_[static_cast<size_t>(j - 1)]) return false;
    return IsConsonant(j);
  }

  // cvc at i-2..i where the last c is not w, x or y (enables e-restoration).
  bool CvcEnding(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    const char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool EndsWith(const char* suffix) {
    const int length = static_cast<int>(__builtin_strlen(suffix));
    if (length > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ - length + 1), static_cast<size_t>(length),
                   suffix) != 0) {
      return false;
    }
    j_ = k_ - length;
    return true;
  }

  void SetTo(const char* replacement) {
    const int length = static_cast<int>(__builtin_strlen(replacement));
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_), replacement);
    k_ = j_ + length;
  }

  void ReplaceIfMeasure(const char* replacement) {
    if (Measure(j_) > 0) SetTo(replacement);
  }

  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (EndsWith("sses")) {
        k_ -= 2;
      } else if (EndsWith("ies")) {
        SetTo("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (EndsWith("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((EndsWith("ed") || EndsWith("ing")) && VowelInStem(j_)) {
      k_ = j_;
      if (EndsWith("at")) {
        SetTo("ate");
      } else if (EndsWith("bl")) {
        SetTo("ble");
      } else if (EndsWith("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        const char ch = b_[static_cast<size_t>(k_)];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure(k_) == 1 && CvcEnding(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (EndsWith("y") && VowelInStem(j_)) b_[static_cast<size_t>(k_)] = 'i';
  }

  void Step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (EndsWith("ational")) { ReplaceIfMeasure("ate"); break; }
        if (EndsWith("tional")) { ReplaceIfMeasure("tion"); }
        break;
      case 'c':
        if (EndsWith("enci")) { ReplaceIfMeasure("ence"); break; }
        if (EndsWith("anci")) { ReplaceIfMeasure("ance"); }
        break;
      case 'e':
        if (EndsWith("izer")) { ReplaceIfMeasure("ize"); }
        break;
      case 'l':
        if (EndsWith("bli")) { ReplaceIfMeasure("ble"); break; }
        if (EndsWith("alli")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("entli")) { ReplaceIfMeasure("ent"); break; }
        if (EndsWith("eli")) { ReplaceIfMeasure("e"); break; }
        if (EndsWith("ousli")) { ReplaceIfMeasure("ous"); }
        break;
      case 'o':
        if (EndsWith("ization")) { ReplaceIfMeasure("ize"); break; }
        if (EndsWith("ation")) { ReplaceIfMeasure("ate"); break; }
        if (EndsWith("ator")) { ReplaceIfMeasure("ate"); }
        break;
      case 's':
        if (EndsWith("alism")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("iveness")) { ReplaceIfMeasure("ive"); break; }
        if (EndsWith("fulness")) { ReplaceIfMeasure("ful"); break; }
        if (EndsWith("ousness")) { ReplaceIfMeasure("ous"); }
        break;
      case 't':
        if (EndsWith("aliti")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("iviti")) { ReplaceIfMeasure("ive"); break; }
        if (EndsWith("biliti")) { ReplaceIfMeasure("ble"); }
        break;
      case 'g':
        if (EndsWith("logi")) { ReplaceIfMeasure("log"); }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (EndsWith("icate")) { ReplaceIfMeasure("ic"); break; }
        if (EndsWith("ative")) { ReplaceIfMeasure(""); break; }
        if (EndsWith("alize")) { ReplaceIfMeasure("al"); }
        break;
      case 'i':
        if (EndsWith("iciti")) { ReplaceIfMeasure("ic"); }
        break;
      case 'l':
        if (EndsWith("ical")) { ReplaceIfMeasure("ic"); break; }
        if (EndsWith("ful")) { ReplaceIfMeasure(""); }
        break;
      case 's':
        if (EndsWith("ness")) { ReplaceIfMeasure(""); }
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (EndsWith("al")) break;
        return;
      case 'c':
        if (EndsWith("ance")) break;
        if (EndsWith("ence")) break;
        return;
      case 'e':
        if (EndsWith("er")) break;
        return;
      case 'i':
        if (EndsWith("ic")) break;
        return;
      case 'l':
        if (EndsWith("able")) break;
        if (EndsWith("ible")) break;
        return;
      case 'n':
        if (EndsWith("ant")) break;
        if (EndsWith("ement")) break;
        if (EndsWith("ment")) break;
        if (EndsWith("ent")) break;
        return;
      case 'o':
        if (EndsWith("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' || b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (EndsWith("ou")) break;
        return;
      case 's':
        if (EndsWith("ism")) break;
        return;
      case 't':
        if (EndsWith("ate")) break;
        if (EndsWith("iti")) break;
        return;
      case 'u':
        if (EndsWith("ous")) break;
        return;
      case 'v':
        if (EndsWith("ive")) break;
        return;
      case 'z':
        if (EndsWith("ize")) break;
        return;
      default:
        return;
    }
    if (Measure(j_) > 1) k_ = j_;
  }

  void Step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      // Drop a final e when measure > 1, or measure == 1 without cvc before it.
      const int measure = Measure(k_);
      if (measure > 1 || (measure == 1 && !CvcEnding(k_ - 1))) --k_;
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_) && Measure(k_) > 1) {
      --k_;
    }
  }

  std::string b_;
  int k_;
  int j_ = 0;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() < 3) return std::string(word);
  return Stemmer(std::string(word)).Run();
}

}  // namespace cpd
