#ifndef CPD_TEXT_VOCABULARY_H_
#define CPD_TEXT_VOCABULARY_H_

/// \file vocabulary.h
/// Bidirectional word <-> integer-id mapping shared by the corpus, the topic
/// models and the ranking application (queries are looked up here).

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cpd {

/// Word identifier; kInvalidWord marks out-of-vocabulary lookups.
using WordId = int32_t;
inline constexpr WordId kInvalidWord = -1;

/// Append-only dictionary. Ids are dense [0, size).
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of the word, inserting it if new.
  WordId GetOrAdd(std::string_view word);

  /// Returns the id of the word or kInvalidWord if absent.
  WordId Find(std::string_view word) const;

  /// Returns the word for a valid id.
  const std::string& WordOf(WordId id) const;

  /// Number of occurrences recorded via CountOccurrence.
  int64_t Frequency(WordId id) const;

  /// Bumps the occurrence counter (used for frequency-based query filtering,
  /// paper §6.3.2).
  void CountOccurrence(WordId id, int64_t delta = 1);

  size_t size() const { return words_.size(); }
  bool empty() const { return words_.empty(); }

  /// Serializes as "word<TAB>frequency" lines.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<Vocabulary> LoadFromFile(const std::string& path);

 private:
  std::unordered_map<std::string, WordId> index_;
  std::vector<std::string> words_;
  std::vector<int64_t> frequency_;
};

}  // namespace cpd

#endif  // CPD_TEXT_VOCABULARY_H_
