#ifndef CPD_TEXT_STOPWORDS_H_
#define CPD_TEXT_STOPWORDS_H_

/// \file stopwords.h
/// Built-in English stopword list plus a function-word list that approximates
/// the paper's "keep nouns, verbs and hashtags" POS filter (see DESIGN.md §2).

#include <string_view>

namespace cpd {

/// True for common English stopwords (articles, pronouns, auxiliaries, ...).
bool IsStopword(std::string_view word);

/// True for function words dropped by the POS-filter approximation
/// (prepositions, conjunctions, interjections, modal adverbs).
bool IsFunctionWord(std::string_view word);

}  // namespace cpd

#endif  // CPD_TEXT_STOPWORDS_H_
