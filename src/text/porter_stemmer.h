#ifndef CPD_TEXT_PORTER_STEMMER_H_
#define CPD_TEXT_PORTER_STEMMER_H_

/// \file porter_stemmer.h
/// The classic Porter (1980) suffix-stripping stemmer. The paper's
/// preprocessing stems tweets and paper titles before modeling (§6.1).

#include <string>
#include <string_view>

namespace cpd {

/// Returns the Porter stem of a lowercase ASCII word. Words shorter than
/// 3 characters are returned unchanged, matching the original algorithm.
std::string PorterStem(std::string_view word);

}  // namespace cpd

#endif  // CPD_TEXT_PORTER_STEMMER_H_
