#include "text/tokenizer.h"

#include <cctype>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "util/string_util.h"

namespace cpd {

namespace {

bool IsUrlToken(std::string_view token) {
  return StartsWith(token, "http://") || StartsWith(token, "https://") ||
         StartsWith(token, "www.");
}

bool IsAllDigits(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Strips every non-alphanumeric character except a leading '#'.
std::string CleanToken(std::string_view raw, bool keep_hashtags) {
  std::string cleaned;
  cleaned.reserve(raw.size());
  bool is_hashtag = keep_hashtags && !raw.empty() && raw.front() == '#';
  if (is_hashtag) cleaned += '#';
  for (char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '\'') cleaned += c;
  }
  // An apostrophe-only or '#'-only token is empty after cleaning.
  if (cleaned == "#" || cleaned == "'") return "";
  return cleaned;
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  for (const std::string& raw : SplitWhitespace(text)) {
    if (IsUrlToken(raw)) continue;
    std::string token = options.lowercase ? ToLower(raw) : raw;
    token = CleanToken(token, options.keep_hashtags);
    if (token.empty()) continue;
    const bool is_hashtag = token.front() == '#';
    if (!is_hashtag) {
      if (IsAllDigits(token)) continue;
      if (token.size() < options.min_token_length) continue;
      if (options.remove_stopwords && IsStopword(token)) continue;
      if (options.remove_function_words && IsFunctionWord(token)) continue;
      if (options.stem) token = PorterStem(token);
      if (token.size() < options.min_token_length) continue;
      if (options.remove_stopwords && IsStopword(token)) continue;
    } else if (token.size() < 1 + options.min_token_length) {
      continue;
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace cpd
