#include "text/corpus.h"

#include "util/logging.h"

namespace cpd {

void Corpus::SetVocabulary(Vocabulary vocabulary) {
  CPD_CHECK(documents_.empty());
  vocabulary_ = std::move(vocabulary);
}

DocId Corpus::AddRawDocument(UserId user, int32_t time, std::string_view text,
                             const TokenizerOptions& options) {
  std::vector<WordId> words;
  for (const std::string& token : Tokenize(text, options)) {
    words.push_back(vocabulary_.GetOrAdd(token));
  }
  if (words.size() < kMinWordsPerDocument) {
    ++num_dropped_;
    return kInvalidDoc;
  }
  return Append(user, time, std::move(words));
}

DocId Corpus::AddTokenizedDocument(UserId user, int32_t time,
                                   std::span<const WordId> words) {
  if (words.size() < kMinWordsPerDocument) {
    ++num_dropped_;
    return kInvalidDoc;
  }
  return Append(user, time, std::vector<WordId>(words.begin(), words.end()));
}

DocId Corpus::Append(UserId user, int32_t time, std::vector<WordId> words) {
  CPD_CHECK_GE(user, 0);
  for (WordId w : words) vocabulary_.CountOccurrence(w);
  total_tokens_ += static_cast<int64_t>(words.size());
  const DocId id = static_cast<DocId>(documents_.size());
  documents_.push_back(Document{user, time, std::move(words)});
  if (static_cast<size_t>(user) >= documents_by_user_.size()) {
    documents_by_user_.resize(static_cast<size_t>(user) + 1);
  }
  documents_by_user_[static_cast<size_t>(user)].push_back(id);
  return id;
}

void Corpus::RemapUsers(const std::vector<UserId>& remap, size_t new_num_users) {
  documents_by_user_.assign(new_num_users, {});
  for (size_t d = 0; d < documents_.size(); ++d) {
    Document& doc = documents_[d];
    CPD_CHECK_LT(static_cast<size_t>(doc.user), remap.size());
    const UserId mapped = remap[static_cast<size_t>(doc.user)];
    CPD_CHECK_GE(mapped, 0);
    CPD_CHECK_LT(static_cast<size_t>(mapped), new_num_users);
    doc.user = mapped;
    documents_by_user_[static_cast<size_t>(mapped)].push_back(static_cast<DocId>(d));
  }
}

const Document& Corpus::document(DocId id) const {
  CPD_CHECK_GE(id, 0);
  CPD_CHECK_LT(static_cast<size_t>(id), documents_.size());
  return documents_[static_cast<size_t>(id)];
}

}  // namespace cpd
