#ifndef CPD_TEXT_CORPUS_H_
#define CPD_TEXT_CORPUS_H_

/// \file corpus.h
/// Tokenized document collection with the paper's preprocessing filters:
/// documents shorter than two tokens are dropped, and (at the graph level)
/// users left without documents are removed (§6.1).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace cpd {

/// Document identifier (dense, assigned by insertion order).
using DocId = int32_t;
/// User identifier (dense).
using UserId = int32_t;

/// One preprocessed document: its author, time bin and token ids.
struct Document {
  UserId user = -1;
  int32_t time = 0;  ///< Discrete time bin (e.g. day for Twitter, year for DBLP).
  std::vector<WordId> words;
};

/// Append-only collection of preprocessed documents sharing one vocabulary.
class Corpus {
 public:
  Corpus() = default;

  /// Tokenizes raw text and appends it if it passes the min-length filter.
  /// Returns the new DocId or kInvalidDoc if the document was dropped.
  DocId AddRawDocument(UserId user, int32_t time, std::string_view text,
                       const TokenizerOptions& options = {});

  /// Appends an already-tokenized document (used by the synthetic generator).
  /// Applies the same min-length filter.
  DocId AddTokenizedDocument(UserId user, int32_t time,
                             std::span<const WordId> words);

  static constexpr DocId kInvalidDoc = -1;
  /// Minimum tokens a document needs to be kept (paper: 2).
  static constexpr size_t kMinWordsPerDocument = 2;

  const Document& document(DocId id) const;
  size_t num_documents() const { return documents_.size(); }
  /// Total token occurrences across all documents.
  int64_t total_tokens() const { return total_tokens_; }

  Vocabulary& vocabulary() { return vocabulary_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }

  /// Replaces the vocabulary; only valid before any document is added. Used
  /// when rebuilding a graph (e.g. cross-validation splits) so word ids stay
  /// aligned with a source corpus.
  void SetVocabulary(Vocabulary vocabulary);

  /// Documents of each user, indexed by user id (grows as users appear).
  const std::vector<std::vector<DocId>>& documents_by_user() const {
    return documents_by_user_;
  }

  /// Number of dropped too-short documents (for statistics reporting).
  int64_t num_dropped_documents() const { return num_dropped_; }

  /// Rewrites document authors as remap[user] and rebuilds the per-user
  /// index. Every referenced user must map to a valid id; only users without
  /// documents may map to -1. Used by GraphBuilder when dropping isolated
  /// users (paper §6.1).
  void RemapUsers(const std::vector<UserId>& remap, size_t new_num_users);

 private:
  DocId Append(UserId user, int32_t time, std::vector<WordId> words);

  Vocabulary vocabulary_;
  std::vector<Document> documents_;
  std::vector<std::vector<DocId>> documents_by_user_;
  int64_t total_tokens_ = 0;
  int64_t num_dropped_ = 0;
};

}  // namespace cpd

#endif  // CPD_TEXT_CORPUS_H_
