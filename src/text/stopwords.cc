#include "text/stopwords.h"

#include <string>
#include <unordered_set>

namespace cpd {

namespace {

const std::unordered_set<std::string>& StopwordSet() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "a",      "about",  "above",   "after",   "again",   "against", "all",
      "am",     "an",     "and",     "any",     "are",     "aren't",  "as",
      "at",     "be",     "because", "been",    "before",  "being",   "below",
      "between", "both",  "but",     "by",      "can",     "cannot",  "could",
      "couldn't", "did",  "didn't",  "do",      "does",    "doesn't", "doing",
      "don't",  "down",   "during",  "each",    "few",     "for",     "from",
      "further", "had",   "hadn't",  "has",     "hasn't",  "have",    "haven't",
      "having", "he",     "he'd",    "he'll",   "he's",    "her",     "here",
      "here's", "hers",   "herself", "him",     "himself", "his",     "how",
      "how's",  "i",      "i'd",     "i'll",    "i'm",     "i've",    "if",
      "in",     "into",   "is",      "isn't",   "it",      "it's",    "its",
      "itself", "let's",  "me",      "more",    "most",    "mustn't", "my",
      "myself", "no",     "nor",     "not",     "of",      "off",     "on",
      "once",   "only",   "or",      "other",   "ought",   "our",     "ours",
      "ourselves", "out", "over",    "own",     "same",    "shan't",  "she",
      "she'd",  "she'll", "she's",   "should",  "shouldn't", "so",    "some",
      "such",   "than",   "that",    "that's",  "the",     "their",   "theirs",
      "them",   "themselves", "then", "there",  "there's", "these",   "they",
      "they'd", "they'll", "they're", "they've", "this",   "those",   "through",
      "to",     "too",    "under",   "until",   "up",      "very",    "was",
      "wasn't", "we",     "we'd",    "we'll",   "we're",   "we've",   "were",
      "weren't", "what",  "what's",  "when",    "when's",  "where",   "where's",
      "which",  "while",  "who",     "who's",   "whom",    "why",     "why's",
      "with",   "won't",  "would",   "wouldn't", "you",    "you'd",   "you'll",
      "you're", "you've", "your",    "yours",   "yourself", "yourselves",
      "rt",     "via",    "amp",     "http",    "https",   "www",
  };
  return *kSet;
}

const std::unordered_set<std::string>& FunctionWordSet() {
  static const auto* kSet = new std::unordered_set<std::string>{
      // Prepositions / particles not already in the stopword list.
      "across", "along", "amid", "among", "around", "atop", "behind", "beneath",
      "beside", "besides", "beyond", "despite", "except", "inside", "near",
      "onto", "outside", "past", "per", "since", "though", "throughout", "till",
      "toward", "towards", "underneath", "unless", "unlike", "upon", "versus",
      "within", "without",
      // Conjunctions.
      "although", "whereas", "whether", "yet",
      // Common adverbs / interjections the POS filter would drop.
      "also", "always", "ever", "just", "maybe", "never", "now", "often",
      "perhaps", "quite", "rather", "really", "soon", "still", "today",
      "tomorrow", "yesterday", "even", "already", "almost", "much", "many",
      "oh", "ah", "wow", "hey", "yeah", "ok", "okay", "please", "thanks",
      "thank", "lol", "omg", "hmm",
  };
  return *kSet;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(std::string(word)) > 0;
}

bool IsFunctionWord(std::string_view word) {
  return FunctionWordSet().count(std::string(word)) > 0;
}

}  // namespace cpd
