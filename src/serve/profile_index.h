#ifndef CPD_SERVE_PROFILE_INDEX_H_
#define CPD_SERVE_PROFILE_INDEX_H_

/// \file profile_index.h
/// Read-side index over a trained CPD model (the §5 applications are all
/// read workloads over pi/theta/phi/eta). A ProfileIndex is immutable once
/// built and safe to share across serving threads: flat row-major matrices
/// handed out as std::span rows, plus the precomputed structures every
/// query type needs —
///   - per-user top-k membership lists (the paper's top-5 assignment
///     convention, Table 6 / §6.3),
///   - per-community member postings (users assigned by top-k membership,
///     sorted by descending membership weight),
///   - the topic-aggregated diffusion matrix sum_z eta_{c,c',z}.
/// Three construction paths produce bit-identical query answers for the
/// same trained estimates:
///   - FromModel / FromArtifact copy the matrices onto the heap (the
///     reference path; works for every artifact version and text models);
///   - FromMapped serves the spans straight out of an mmap'd v3 artifact —
///     zero rows copied, the kernel pages the file in on demand, reload is
///     O(1) in the model size, and N live generations share clean pages;
///   - FromMappedWithDelta overlays a .cpdd delta copy-on-write over a
///     mapped base: touched pi rows live on the heap, untouched rows keep
///     pointing into the shared mapping.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "core/model_delta.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace cpd {

class CpdModel;
struct ArtifactDerived;

namespace serve {

/// How LoadModelBundle materializes a binary artifact.
enum class ArtifactLoadMode {
  /// mmap when the file is a v3 artifact, heap otherwise (v1/v2/text).
  kAuto,
  /// Always copy onto the heap — the reference path. Use when the artifact
  /// lives on storage too slow to page from (network FS), or to pin
  /// behavior while debugging.
  kHeap,
  /// Require zero-copy mmap; loading a v1/v2 artifact or a text model
  /// fails with FailedPrecondition instead of silently copying.
  kMmap,
};

/// "auto" | "heap" | "mmap" (the --load_mode flag spelling); InvalidArgument
/// otherwise.
StatusOr<ArtifactLoadMode> ParseArtifactLoadMode(const std::string& text);
/// The inverse spelling, for logs and benchmark records.
const char* ArtifactLoadModeName(ArtifactLoadMode mode);

struct ProfileIndexOptions {
  /// k of the per-user top-k membership lists and community postings. The
  /// paper assigns users to their top-5 communities for ranking and
  /// conductance evaluation.
  int membership_top_k = 5;

  /// Precompute the per-user top-k lists and per-community member postings
  /// (O(U·|C| log k) + a weight sort). Serving front ends want this;
  /// adapters that only score (ranking, diffusion, attribute aggregation)
  /// skip it — Membership/TopUsers queries then fail with
  /// FailedPrecondition instead of paying the build. An mmap load adopts
  /// the artifact's stored postings when its derived_top_k matches, making
  /// this free.
  bool build_membership_index = true;

  /// Mirrors CpdConfig::ablation.heterogeneous_links for diffusion queries;
  /// artifacts do not carry the training config, so loaders default to the
  /// full model.
  bool heterogeneous_links = true;

  /// Precompute the query-invariant scoring tables (the serving fast path):
  ///   - link_content  M[c][z] = sum_c2 eta(c,c2,z) * theta_c2[z], which
  ///     turns Eq. 19 community ranking from O(|C|^2 |Z|) per request into
  ///     O(|C| |Z|);
  ///   - word-major log-phi, so per-query word products gather |q|
  ///     contiguous rows of length |Z| instead of striding |q| full-vocab
  ///     rows and calling std::log per (token, topic);
  ///   - the fused eta*theta tensor G[c][z][c2] = eta(c,c2,z)*theta_c2[z]
  ///     laid out (c,z)-major, so the Eq. 4 diffusion inner loop is one
  ///     contiguous dot with pi_v.
  /// Memory cost: (|C| + |V| + |C|^2) * |Z| doubles on top of the
  /// estimates (the G tensor is exactly eta-sized). Disable to serve big
  /// models tight on RAM — the kernels then fall back to the naive
  /// reference scorers, which answer bit-identically. These tables are
  /// always heap-built (never stored in the artifact), in both load modes.
  bool precompute_scoring = true;

  /// How LoadModelBundle / LoadFromFile materialize binary artifacts.
  ArtifactLoadMode load_mode = ArtifactLoadMode::kAuto;
};

/// One (community, weight) membership entry of a user's top-k list.
struct TopMembership {
  int community = -1;
  double weight = 0.0;
};

class ProfileIndex {
 public:
  /// Copies the model's estimates and precomputes the read-side structures.
  static ProfileIndex FromModel(const CpdModel& model,
                                const ProfileIndexOptions& options = {});

  /// Ingests a decoded artifact (moves the matrices; no re-encode). The
  /// heap reference path: stored derived sections of a v3 artifact are
  /// ignored and rebuilt from the estimates.
  static StatusOr<ProfileIndex> FromArtifact(ModelArtifact artifact,
                                             const ProfileIndexOptions& options = {});

  /// Serves straight off a mapped v3 artifact: every matrix accessor is a
  /// span into the page cache. Adopts the artifact's stored derived
  /// sections when min(stored k, |C|) == min(options.membership_top_k,
  /// |C|), else rebuilds them on the heap (the estimates stay zero-copy
  /// either way). The index holds a reference on the mapping.
  static StatusOr<ProfileIndex> FromMapped(
      std::shared_ptr<const MappedModelArtifact> mapped,
      const ProfileIndexOptions& options = {});

  /// Copy-on-write overlay of a .cpdd delta over a mapped base: the
  /// delta's touched pi rows (and the full refreshed globals) live on the
  /// heap, every untouched pi row keeps pointing into the shared mapping.
  /// FailedPrecondition when mapped->generation() !=
  /// delta.base_generation.
  static StatusOr<ProfileIndex> FromMappedWithDelta(
      std::shared_ptr<const MappedModelArtifact> mapped,
      const ModelDelta& delta, const ProfileIndexOptions& options = {});

  /// Loads a model file: the binary ".cpdb" artifact directly (mapped or
  /// copied per options.load_mode), or — for back-compat — the readable
  /// text format via CpdModel::LoadFromFile (sniffed by magic).
  static StatusOr<ProfileIndex> LoadFromFile(const std::string& path,
                                             const ProfileIndexOptions& options = {});

  ProfileIndex(ProfileIndex&&) = default;
  ProfileIndex& operator=(ProfileIndex&&) = default;
  // The span members alias the owned stores (or the mapping), so a copy
  // would dangle into its source; the index is shared, not copied.
  ProfileIndex(const ProfileIndex&) = delete;
  ProfileIndex& operator=(const ProfileIndex&) = delete;

  // ----- dimensions -----
  int num_communities() const { return num_communities_; }
  int num_topics() const { return num_topics_; }
  size_t num_users() const { return num_users_; }
  size_t vocab_size() const { return vocab_size_; }
  int32_t num_time_bins() const { return num_time_bins_; }
  int membership_top_k() const { return options_.membership_top_k; }
  bool heterogeneous_links() const { return options_.heterogeneous_links; }

  /// Lineage stamp of the backing artifact (0 for v1/v2 files, text
  /// models, and cold trains); a delta reload must name this generation.
  uint64_t artifact_generation() const { return generation_; }

  /// Non-null when the index serves off an mmap'd artifact (possibly with
  /// a delta overlay); the registry patches deltas through this.
  const std::shared_ptr<const MappedModelArtifact>& mapped_artifact() const {
    return mapped_;
  }
  bool is_mmap_backed() const { return mapped_ != nullptr; }

  // ----- row views (valid for the life of the index) -----
  /// pi_u over communities.
  std::span<const double> Membership(UserId u) const {
    return {pi_rows_[static_cast<size_t>(u)], kc()};
  }
  /// theta_c over topics.
  std::span<const double> ContentProfile(int c) const {
    return theta_.subspan(static_cast<size_t>(c) * kz(), kz());
  }
  /// phi_z over words.
  std::span<const double> TopicWords(int z) const {
    return phi_.subspan(static_cast<size_t>(z) * vocab_size_, vocab_size_);
  }
  /// eta_{c,c',.} over topics.
  std::span<const double> EtaRow(int c, int c2) const {
    return eta_.subspan(
        (static_cast<size_t>(c) * kc() + static_cast<size_t>(c2)) * kz(),
        kz());
  }
  double Eta(int c, int c2, int z) const {
    return EtaRow(c, c2)[static_cast<size_t>(z)];
  }
  /// Precomputed sum_z eta_{c,c',z} (§5 aggregated diffusion strength).
  double EtaAggregated(int c, int c2) const {
    return eta_agg_[static_cast<size_t>(c) * kc() + static_cast<size_t>(c2)];
  }
  std::span<const double> EtaAggregatedRow(int c) const {
    return eta_agg_.subspan(static_cast<size_t>(c) * kc(), kc());
  }
  std::span<const double> DiffusionWeights() const { return weights_; }
  /// n_tz with out-of-range time bins clamped (prediction-time timestamps
  /// may fall outside the training range).
  double TopicPopularity(int32_t t, int z) const;

  // ----- precomputed scoring tables (ProfileIndexOptions::precompute_scoring) -----
  /// False when built with precompute_scoring = false; the QueryEngine then
  /// scores through the naive reference kernels.
  bool has_scoring_tables() const { return !link_content_.empty(); }

  /// M[c][.] = sum_c2 eta(c,c2,.) * theta_c2[.] over topics (the
  /// query-invariant factor of Eq. 19; same c2 accumulation order as the
  /// reference kernel, so fast and naive scores agree bitwise).
  std::span<const double> LinkContentRow(int c) const {
    return {link_content_.data() + static_cast<size_t>(c) * kz(), kz()};
  }

  /// log(max(phi_{.,w}, 1e-300)) over topics — one contiguous word-major
  /// row per vocabulary word.
  std::span<const double> WordLogPhi(WordId w) const {
    return {word_log_phi_.data() + static_cast<size_t>(w) * kz(), kz()};
  }

  /// G[c][z][.] = eta(c,.,z) * theta_.[z] over c2 — the fused diffusion row
  /// dotted with pi_v by the Eq. 4 community-score kernel.
  std::span<const double> EtaThetaRow(int c, int z) const {
    return {eta_theta_.data() +
                (static_cast<size_t>(c) * kz() + static_cast<size_t>(z)) * kc(),
            kc()};
  }

  // ----- precomputed read-side structures -----
  /// False when built with build_membership_index = false; TopCommunities /
  /// CommunityMembers are then empty and the membership/top-users queries
  /// report FailedPrecondition.
  bool has_membership_index() const { return top_k_per_user_ > 0; }

  /// Top-k communities of u by membership weight, descending (k =
  /// options.membership_top_k; exactly min(k, |C|) entries).
  std::span<const TopMembership> TopCommunities(UserId u) const {
    const size_t k = static_cast<size_t>(top_k_per_user_);
    return {top_memberships_.data() + static_cast<size_t>(u) * k, k};
  }

  /// Users assigned to community c by the top-k convention, sorted by
  /// descending pi_{u,c} (ties by ascending user id).
  std::span<const UserId> CommunityMembers(int c) const {
    return members_.subspan(
        static_cast<size_t>(member_offsets_[static_cast<size_t>(c)]),
        static_cast<size_t>(member_offsets_[static_cast<size_t>(c) + 1] -
                            member_offsets_[static_cast<size_t>(c)]));
  }

  /// pi_{u,c} for each posted member, parallel to CommunityMembers(c) —
  /// TopUsers answers straight off the posting instead of re-reading one
  /// pi row per member.
  std::span<const double> CommunityMemberWeights(int c) const {
    return member_weights_.subspan(
        static_cast<size_t>(member_offsets_[static_cast<size_t>(c)]),
        static_cast<size_t>(member_offsets_[static_cast<size_t>(c) + 1] -
                            member_offsets_[static_cast<size_t>(c)]));
  }

  /// Bounds checks as typed errors (serving front ends reply with these
  /// instead of crashing).
  Status CheckUser(UserId u) const;
  Status CheckCommunity(int c) const;
  Status CheckWord(WordId w) const;
  Status CheckTopic(int z) const;

 private:
  ProfileIndex() = default;

  size_t kc() const { return static_cast<size_t>(num_communities_); }
  size_t kz() const { return static_cast<size_t>(num_topics_); }

  /// Points pi_rows_[u] at row u of a flat pi matrix.
  void BuildPiRows(const double* pi);
  /// Builds link_content_ / word_log_phi_ / eta_theta_ from the estimate
  /// spans (no-op unless options_.precompute_scoring).
  void BuildScoringTables();
  /// Rebuilds eta_agg + membership structures on the heap via
  /// core/artifact_derived and adopts them.
  void RebuildDerived();
  /// Takes ownership of built derived structures (membership part only
  /// when options_.build_membership_index).
  void AdoptDerived(ArtifactDerived&& derived);
  /// Materializes the TopMembership structs from parallel arrays.
  void MaterializeTopMemberships(std::span<const int32_t> communities,
                                 std::span<const double> weights);

  ProfileIndexOptions options_;
  int num_communities_ = 0;
  int num_topics_ = 0;
  size_t num_users_ = 0;
  size_t vocab_size_ = 0;
  int32_t num_time_bins_ = 1;
  uint64_t generation_ = 0;

  /// Keepalive for every span that aliases the mapping (null = pure heap).
  std::shared_ptr<const MappedModelArtifact> mapped_;

  // Owned backing stores; empty whenever the matching span aliases the
  // mapping instead. Spans stay valid across moves because vector buffers
  // are heap-stable.
  std::vector<double> pi_store_;          // U x C (heap loads)
  std::vector<double> delta_pi_store_;    // touched rows (delta overlay)
  std::vector<double> theta_store_;
  std::vector<double> phi_store_;
  std::vector<double> eta_store_;
  std::vector<double> eta_agg_store_;
  std::vector<double> weights_store_;
  std::vector<double> popularity_store_;

  /// Row u of pi — into pi_store_, the mapping, or (delta overlay) a mix
  /// of delta_pi_store_ and the mapping.
  std::vector<const double*> pi_rows_;
  std::span<const double> theta_;       // C x Z
  std::span<const double> phi_;         // Z x W
  std::span<const double> eta_;         // C x C x Z
  std::span<const double> eta_agg_;     // C x C
  std::span<const double> weights_;     // kNumDiffusionWeights
  std::span<const double> popularity_;  // T x Z

  // Query-invariant scoring tables (empty unless precompute_scoring;
  // always heap-owned).
  std::vector<double> link_content_;  // C x Z
  std::vector<double> word_log_phi_;  // W x Z (word-major)
  std::vector<double> eta_theta_;     // C x Z x C ((c,z)-major rows over c2)

  int top_k_per_user_ = 0;                      // min(top_k, |C|)
  std::vector<TopMembership> top_memberships_;  // U x top_k_per_user_
  std::span<const uint64_t> member_offsets_;    // |C| + 1
  std::span<const UserId> members_;             // postings, weight-sorted
  std::span<const double> member_weights_;      // pi_{u,c} per posting entry
  std::vector<uint64_t> member_offsets_store_;
  std::vector<int32_t> members_store_;
  std::vector<double> member_weights_store_;
};

/// A loaded index together with the vocabulary bundled in a v2+ ".cpdb"
/// artifact (null for v1 artifacts, text models, and artifacts saved
/// without one). Serving front ends (cpd_query, cpd_serve) load through
/// this so textual rank queries work without a side --vocab file.
struct ModelBundle {
  ProfileIndex index;
  std::shared_ptr<const Vocabulary> vocabulary;
};

/// Loads a model file like ProfileIndex::LoadFromFile but also surfaces the
/// bundled vocabulary when the artifact carries one. options.load_mode
/// picks the materialization: kAuto maps v3 artifacts and heap-loads
/// everything else; kMmap makes a non-v3 input a typed error; kHeap always
/// copies.
StatusOr<ModelBundle> LoadModelBundle(const std::string& path,
                                      const ProfileIndexOptions& options = {});

}  // namespace serve
}  // namespace cpd

#endif  // CPD_SERVE_PROFILE_INDEX_H_
