#ifndef CPD_SERVE_PROFILE_INDEX_H_
#define CPD_SERVE_PROFILE_INDEX_H_

/// \file profile_index.h
/// Read-side index over a trained CPD model (the §5 applications are all
/// read workloads over pi/theta/phi/eta). A ProfileIndex is immutable once
/// built and safe to share across serving threads: flat row-major matrices
/// handed out as std::span rows, plus the precomputed structures every
/// query type needs —
///   - per-user top-k membership lists (the paper's top-5 assignment
///     convention, Table 6 / §6.3),
///   - per-community member postings (users assigned by top-k membership,
///     sorted by descending membership weight),
///   - the topic-aggregated diffusion matrix sum_z eta_{c,c',z}.
/// Build one from an in-memory CpdModel or load it straight from the
/// binary ".cpdb" artifact (core/model_artifact.h); both construction
/// paths produce bit-identical indexes for the same trained estimates.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace cpd {

class CpdModel;

namespace serve {

struct ProfileIndexOptions {
  /// k of the per-user top-k membership lists and community postings. The
  /// paper assigns users to their top-5 communities for ranking and
  /// conductance evaluation.
  int membership_top_k = 5;

  /// Precompute the per-user top-k lists and per-community member postings
  /// (O(U·|C| log k) + a weight sort). Serving front ends want this;
  /// adapters that only score (ranking, diffusion, attribute aggregation)
  /// skip it — Membership/TopUsers queries then fail with
  /// FailedPrecondition instead of paying the build.
  bool build_membership_index = true;

  /// Mirrors CpdConfig::ablation.heterogeneous_links for diffusion queries;
  /// artifacts do not carry the training config, so loaders default to the
  /// full model.
  bool heterogeneous_links = true;

  /// Precompute the query-invariant scoring tables (the serving fast path):
  ///   - link_content  M[c][z] = sum_c2 eta(c,c2,z) * theta_c2[z], which
  ///     turns Eq. 19 community ranking from O(|C|^2 |Z|) per request into
  ///     O(|C| |Z|);
  ///   - word-major log-phi, so per-query word products gather |q|
  ///     contiguous rows of length |Z| instead of striding |q| full-vocab
  ///     rows and calling std::log per (token, topic);
  ///   - the fused eta*theta tensor G[c][z][c2] = eta(c,c2,z)*theta_c2[z]
  ///     laid out (c,z)-major, so the Eq. 4 diffusion inner loop is one
  ///     contiguous dot with pi_v.
  /// Memory cost: (|C| + |V| + |C|^2) * |Z| doubles on top of the
  /// estimates (the G tensor is exactly eta-sized). Disable to serve big
  /// models tight on RAM — the kernels then fall back to the naive
  /// reference scorers, which answer bit-identically.
  bool precompute_scoring = true;
};

/// One (community, weight) membership entry of a user's top-k list.
struct TopMembership {
  int community = -1;
  double weight = 0.0;
};

class ProfileIndex {
 public:
  /// Copies the model's estimates and precomputes the read-side structures.
  static ProfileIndex FromModel(const CpdModel& model,
                                const ProfileIndexOptions& options = {});

  /// Ingests a decoded artifact (moves the matrices; no re-encode).
  static StatusOr<ProfileIndex> FromArtifact(ModelArtifact artifact,
                                             const ProfileIndexOptions& options = {});

  /// Loads a model file: the binary ".cpdb" artifact directly, or — for
  /// back-compat — the readable text format via CpdModel::LoadFromFile
  /// (sniffed by magic).
  static StatusOr<ProfileIndex> LoadFromFile(const std::string& path,
                                             const ProfileIndexOptions& options = {});

  // ----- dimensions -----
  int num_communities() const { return num_communities_; }
  int num_topics() const { return num_topics_; }
  size_t num_users() const { return num_users_; }
  size_t vocab_size() const { return vocab_size_; }
  int32_t num_time_bins() const { return num_time_bins_; }
  int membership_top_k() const { return options_.membership_top_k; }
  bool heterogeneous_links() const { return options_.heterogeneous_links; }

  // ----- row views (valid for the life of the index) -----
  /// pi_u over communities.
  std::span<const double> Membership(UserId u) const {
    return {pi_.data() + static_cast<size_t>(u) * kc(), kc()};
  }
  /// theta_c over topics.
  std::span<const double> ContentProfile(int c) const {
    return {theta_.data() + static_cast<size_t>(c) * kz(), kz()};
  }
  /// phi_z over words.
  std::span<const double> TopicWords(int z) const {
    return {phi_.data() + static_cast<size_t>(z) * vocab_size_, vocab_size_};
  }
  /// eta_{c,c',.} over topics.
  std::span<const double> EtaRow(int c, int c2) const {
    return {eta_.data() +
                (static_cast<size_t>(c) * kc() + static_cast<size_t>(c2)) * kz(),
            kz()};
  }
  double Eta(int c, int c2, int z) const {
    return EtaRow(c, c2)[static_cast<size_t>(z)];
  }
  /// Precomputed sum_z eta_{c,c',z} (§5 aggregated diffusion strength).
  double EtaAggregated(int c, int c2) const {
    return eta_agg_[static_cast<size_t>(c) * kc() + static_cast<size_t>(c2)];
  }
  std::span<const double> EtaAggregatedRow(int c) const {
    return {eta_agg_.data() + static_cast<size_t>(c) * kc(), kc()};
  }
  std::span<const double> DiffusionWeights() const { return weights_; }
  /// n_tz with out-of-range time bins clamped (prediction-time timestamps
  /// may fall outside the training range).
  double TopicPopularity(int32_t t, int z) const;

  // ----- precomputed scoring tables (ProfileIndexOptions::precompute_scoring) -----
  /// False when built with precompute_scoring = false; the QueryEngine then
  /// scores through the naive reference kernels.
  bool has_scoring_tables() const { return !link_content_.empty(); }

  /// M[c][.] = sum_c2 eta(c,c2,.) * theta_c2[.] over topics (the
  /// query-invariant factor of Eq. 19; same c2 accumulation order as the
  /// reference kernel, so fast and naive scores agree bitwise).
  std::span<const double> LinkContentRow(int c) const {
    return {link_content_.data() + static_cast<size_t>(c) * kz(), kz()};
  }

  /// log(max(phi_{.,w}, 1e-300)) over topics — one contiguous word-major
  /// row per vocabulary word.
  std::span<const double> WordLogPhi(WordId w) const {
    return {word_log_phi_.data() + static_cast<size_t>(w) * kz(), kz()};
  }

  /// G[c][z][.] = eta(c,.,z) * theta_.[z] over c2 — the fused diffusion row
  /// dotted with pi_v by the Eq. 4 community-score kernel.
  std::span<const double> EtaThetaRow(int c, int z) const {
    return {eta_theta_.data() +
                (static_cast<size_t>(c) * kz() + static_cast<size_t>(z)) * kc(),
            kc()};
  }

  // ----- precomputed read-side structures -----
  /// False when built with build_membership_index = false; TopCommunities /
  /// CommunityMembers are then empty and the membership/top-users queries
  /// report FailedPrecondition.
  bool has_membership_index() const { return top_k_per_user_ > 0; }

  /// Top-k communities of u by membership weight, descending (k =
  /// options.membership_top_k; exactly min(k, |C|) entries).
  std::span<const TopMembership> TopCommunities(UserId u) const {
    const size_t k = static_cast<size_t>(top_k_per_user_);
    return {top_memberships_.data() + static_cast<size_t>(u) * k, k};
  }

  /// Users assigned to community c by the top-k convention, sorted by
  /// descending pi_{u,c} (ties by ascending user id).
  std::span<const UserId> CommunityMembers(int c) const {
    return {members_.data() + member_offsets_[static_cast<size_t>(c)],
            member_offsets_[static_cast<size_t>(c) + 1] -
                member_offsets_[static_cast<size_t>(c)]};
  }

  /// pi_{u,c} for each posted member, parallel to CommunityMembers(c) —
  /// TopUsers answers straight off the posting instead of re-reading one
  /// pi row per member.
  std::span<const double> CommunityMemberWeights(int c) const {
    return {member_weights_.data() + member_offsets_[static_cast<size_t>(c)],
            member_offsets_[static_cast<size_t>(c) + 1] -
                member_offsets_[static_cast<size_t>(c)]};
  }

  /// Bounds checks as typed errors (serving front ends reply with these
  /// instead of crashing).
  Status CheckUser(UserId u) const;
  Status CheckCommunity(int c) const;
  Status CheckWord(WordId w) const;
  Status CheckTopic(int z) const;

 private:
  ProfileIndex() = default;

  size_t kc() const { return static_cast<size_t>(num_communities_); }
  size_t kz() const { return static_cast<size_t>(num_topics_); }

  /// Fills top_memberships_, members_ and eta_agg_ from the matrices.
  void BuildDerived();

  ProfileIndexOptions options_;
  int num_communities_ = 0;
  int num_topics_ = 0;
  size_t num_users_ = 0;
  size_t vocab_size_ = 0;
  int32_t num_time_bins_ = 1;

  std::vector<double> pi_;          // U x C
  std::vector<double> theta_;       // C x Z
  std::vector<double> phi_;         // Z x W
  std::vector<double> eta_;         // C x C x Z
  std::vector<double> eta_agg_;     // C x C
  std::vector<double> weights_;     // kNumDiffusionWeights
  std::vector<double> popularity_;  // T x Z

  // Query-invariant scoring tables (empty unless precompute_scoring).
  std::vector<double> link_content_;  // C x Z
  std::vector<double> word_log_phi_;  // W x Z (word-major)
  std::vector<double> eta_theta_;     // C x Z x C ((c,z)-major rows over c2)

  int top_k_per_user_ = 0;                      // min(top_k, |C|)
  std::vector<TopMembership> top_memberships_;  // U x top_k_per_user_
  std::vector<size_t> member_offsets_;          // |C| + 1
  std::vector<UserId> members_;                 // postings, weight-sorted
  std::vector<double> member_weights_;          // pi_{u,c} per posting entry
};

/// A loaded index together with the vocabulary bundled in a v2 ".cpdb"
/// artifact (null for v1 artifacts, text models, and artifacts saved
/// without one). Serving front ends (cpd_query, cpd_serve) load through
/// this so textual rank queries work without a side --vocab file.
struct ModelBundle {
  ProfileIndex index;
  std::shared_ptr<const Vocabulary> vocabulary;
};

/// Loads a model file like ProfileIndex::LoadFromFile but also surfaces the
/// bundled vocabulary when the artifact carries one.
StatusOr<ModelBundle> LoadModelBundle(const std::string& path,
                                      const ProfileIndexOptions& options = {});

}  // namespace serve
}  // namespace cpd

#endif  // CPD_SERVE_PROFILE_INDEX_H_
