#ifndef CPD_SERVE_QUERY_ENGINE_H_
#define CPD_SERVE_QUERY_ENGINE_H_

/// \file query_engine.h
/// Unified request/response query API over a ProfileIndex — the serving
/// seam of the library. The four §5 read workloads are typed requests:
///   MembershipRequest       -> who is user u (pi_u, top-k communities)?
///   RankCommunitiesRequest  -> Eq. 19: which communities diffuse query q?
///   DiffusionRequest        -> Eq. 18: will u diffuse v's document?
///   TopUsersRequest         -> strongest members of a community.
/// Every call returns StatusOr so malformed requests surface as typed
/// errors, never crashes; a future RPC/HTTP front end maps these 1:1.
/// Batches fan out over a caller-owned ThreadPool and return responses in
/// request order; the engine itself is immutable and thread-safe.
///
/// Diffusion queries additionally need the social graph (documents for the
/// topic posterior, degree features for the individual factor); bind one at
/// construction or get FailedPrecondition for DiffusionRequests.

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "serve/profile_index.h"
#include "util/status.h"

namespace cpd {

class ThreadPool;

namespace serve {

// ----- requests -----

struct MembershipRequest {
  UserId user = -1;
  /// Entries of the precomputed top-k list to return (clamped to the
  /// index's membership_top_k); 0 returns the list in full.
  int top_k = 0;
  /// Also copy the full pi_u distribution into the response.
  bool include_distribution = false;
};

struct RankCommunitiesRequest {
  /// Conjunctive keyword query (word ids; callers tokenize via
  /// CommunityRanker::ParseQuery or a vocabulary lookup).
  std::vector<WordId> words;
  /// Communities to return (0 = all, ranked).
  int top_k = 0;
  /// Attach p(z | q, c) per returned community (Table 6's last column).
  bool include_topic_distribution = true;
};

struct DiffusionRequest {
  UserId source = -1;      ///< u, the candidate diffuser.
  UserId target = -1;      ///< v, the author being diffused.
  DocId document = -1;     ///< v's document (topic posterior input).
  int32_t time_bin = 0;    ///< t of Eq. 18.
};

struct TopUsersRequest {
  int community = -1;
  int top_k = 10;  ///< 0 = every posted member.
};

// ----- responses -----

struct MembershipResponse {
  std::vector<TopMembership> top;       ///< Descending weight.
  std::vector<double> distribution;     ///< pi_u if requested, else empty.
};

struct RankedCommunityEntry {
  int community = -1;
  double score = 0.0;                     ///< Eq. 19, unnormalized.
  std::vector<double> topic_distribution; ///< p(z | q, c), normalized.
};

struct RankCommunitiesResponse {
  std::vector<RankedCommunityEntry> ranked;  ///< Descending score.
};

struct DiffusionResponse {
  double probability = 0.0;       ///< Eq. 18.
  double friendship_score = 0.0;  ///< sigmoid(pi_u . pi_v), Eq. 3.
};

struct TopUsersResponse {
  std::vector<UserId> users;      ///< Descending membership weight.
  std::vector<double> weights;    ///< pi_{u,c}, parallel to users.
};

/// One request/response of any type (the batch and front-end currency).
using QueryRequest = std::variant<MembershipRequest, RankCommunitiesRequest,
                                  DiffusionRequest, TopUsersRequest>;
using QueryResponse = std::variant<MembershipResponse, RankCommunitiesResponse,
                                   DiffusionResponse, TopUsersResponse>;

class QueryEngine {
 public:
  /// The index (and graph, when given) must outlive the engine. The graph
  /// enables DiffusionRequests; membership/ranking/top-users need none.
  explicit QueryEngine(const ProfileIndex& index,
                       const SocialGraph* graph = nullptr);

  const ProfileIndex& index() const { return index_; }

  // ----- single queries -----
  StatusOr<MembershipResponse> Membership(const MembershipRequest& request) const;
  StatusOr<RankCommunitiesResponse> RankCommunities(
      const RankCommunitiesRequest& request) const;
  StatusOr<DiffusionResponse> Diffusion(const DiffusionRequest& request) const;
  StatusOr<TopUsersResponse> TopUsers(const TopUsersRequest& request) const;

  /// Dispatches on the request's alternative.
  StatusOr<QueryResponse> Query(const QueryRequest& request) const;

  /// Runs a batch, fanning the requests out over `pool` (nullptr runs them
  /// inline). Responses are positionally aligned with the requests; each
  /// slot carries its own Status so one bad request cannot fail the batch.
  std::vector<StatusOr<QueryResponse>> QueryBatch(
      std::span<const QueryRequest> requests, ThreadPool* pool = nullptr) const;

  // ----- shared scoring kernels (the app adapters call these) -----
  /// p(z | d) ∝ (sum_c pi_{author,c} theta_{c,z}) prod_w phi_{z,w},
  /// normalized. Requires a bound graph.
  StatusOr<std::vector<double>> DocumentTopicPosterior(DocId document) const;

  /// The community-factor score S(u, v, z) of Eq. 4 under trained estimates.
  double CommunityScore(UserId u, UserId v, int z) const;

  /// sigmoid(pi_u . pi_v) (Eq. 3).
  double FriendshipScore(UserId u, UserId v) const;

 private:
  const ProfileIndex& index_;
  const SocialGraph* graph_ = nullptr;
};

}  // namespace serve
}  // namespace cpd

#endif  // CPD_SERVE_QUERY_ENGINE_H_
