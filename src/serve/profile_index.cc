#include "serve/profile_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/artifact_derived.h"
#include "core/cpd_model.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpd::serve {

StatusOr<ArtifactLoadMode> ParseArtifactLoadMode(const std::string& text) {
  if (text == "auto") return ArtifactLoadMode::kAuto;
  if (text == "heap") return ArtifactLoadMode::kHeap;
  if (text == "mmap") return ArtifactLoadMode::kMmap;
  return Status::InvalidArgument("load_mode must be auto|heap|mmap, got '" +
                                 text + "'");
}

const char* ArtifactLoadModeName(ArtifactLoadMode mode) {
  switch (mode) {
    case ArtifactLoadMode::kAuto:
      return "auto";
    case ArtifactLoadMode::kHeap:
      return "heap";
    case ArtifactLoadMode::kMmap:
      return "mmap";
  }
  return "auto";
}

ProfileIndex ProfileIndex::FromModel(const CpdModel& model,
                                     const ProfileIndexOptions& options) {
  // Reuse the artifact struct as the common ingestion path so the from-model
  // and from-file constructions cannot diverge.
  ProfileIndexOptions resolved = options;
  resolved.heterogeneous_links =
      options.heterogeneous_links &&
      model.config().ablation.heterogeneous_links;
  auto index = FromArtifact(model.ToArtifact(), resolved);
  // A trained model always yields a valid artifact.
  CPD_CHECK(index.ok());
  return std::move(*index);
}

StatusOr<ProfileIndex> ProfileIndex::FromArtifact(
    ModelArtifact artifact, const ProfileIndexOptions& options) {
  CPD_RETURN_IF_ERROR(artifact.Validate());
  if (options.membership_top_k < 1) {
    return Status::InvalidArgument("membership_top_k < 1");
  }
  ProfileIndex index;
  index.options_ = options;
  index.num_communities_ = artifact.num_communities;
  index.num_topics_ = artifact.num_topics;
  index.num_users_ = artifact.num_users;
  index.vocab_size_ = artifact.vocab_size;
  index.num_time_bins_ = artifact.num_time_bins;
  index.generation_ = artifact.generation;
  index.pi_store_ = std::move(artifact.pi);
  index.theta_store_ = std::move(artifact.theta);
  index.phi_store_ = std::move(artifact.phi);
  index.eta_store_ = std::move(artifact.eta);
  index.weights_store_ = std::move(artifact.weights);
  index.popularity_store_ = std::move(artifact.popularity);
  index.BuildPiRows(index.pi_store_.data());
  index.theta_ = index.theta_store_;
  index.phi_ = index.phi_store_;
  index.eta_ = index.eta_store_;
  index.weights_ = index.weights_store_;
  index.popularity_ = index.popularity_store_;
  index.RebuildDerived();
  index.BuildScoringTables();
  return index;
}

StatusOr<ProfileIndex> ProfileIndex::FromMapped(
    std::shared_ptr<const MappedModelArtifact> mapped,
    const ProfileIndexOptions& options) {
  if (mapped == nullptr) {
    return Status::InvalidArgument("FromMapped: null mapping");
  }
  if (options.membership_top_k < 1) {
    return Status::InvalidArgument("membership_top_k < 1");
  }
  ProfileIndex index;
  index.options_ = options;
  index.num_communities_ = mapped->num_communities();
  index.num_topics_ = mapped->num_topics();
  index.num_users_ = static_cast<size_t>(mapped->num_users());
  index.vocab_size_ = static_cast<size_t>(mapped->vocab_size());
  index.num_time_bins_ = mapped->num_time_bins();
  index.generation_ = mapped->generation();
  index.BuildPiRows(mapped->pi().data());
  index.theta_ = mapped->theta();
  index.phi_ = mapped->phi();
  index.eta_ = mapped->eta();
  index.weights_ = mapped->weights();
  index.popularity_ = mapped->popularity();
  // eta_agg is mandatory in v3, so the aggregation never reruns on load.
  index.eta_agg_ = mapped->eta_agg();
  const int wanted_k =
      std::min(options.membership_top_k, index.num_communities_);
  if (!options.build_membership_index) {
    index.member_offsets_store_.assign(index.kc() + 1, 0);
    index.member_offsets_ = index.member_offsets_store_;
  } else if (mapped->stored_top_k() == wanted_k) {
    // Adopt the stored membership/posting sections: zero build cost. The
    // encoder produced them with the same BuildArtifactDerived the heap
    // path runs, so adopted and rebuilt structures are bit-identical.
    index.top_k_per_user_ = wanted_k;
    index.MaterializeTopMemberships(mapped->topk_communities(),
                                    mapped->topk_weights());
    index.member_offsets_ = mapped->member_offsets();
    index.members_ = mapped->members();
    index.member_weights_ = mapped->member_weights();
  } else {
    // Requested k differs from the stored one (or none stored): pay the
    // heap rebuild; the estimate spans stay zero-copy.
    ArtifactDerived derived = BuildArtifactDerived(
        mapped->pi(), mapped->eta(), index.num_communities_,
        index.num_topics_, index.num_users_, wanted_k);
    index.AdoptDerived(std::move(derived));
  }
  index.BuildScoringTables();
  index.mapped_ = std::move(mapped);
  return index;
}

StatusOr<ProfileIndex> ProfileIndex::FromMappedWithDelta(
    std::shared_ptr<const MappedModelArtifact> mapped,
    const ModelDelta& delta, const ProfileIndexOptions& options) {
  if (mapped == nullptr) {
    return Status::InvalidArgument("FromMappedWithDelta: null mapping");
  }
  if (options.membership_top_k < 1) {
    return Status::InvalidArgument("membership_top_k < 1");
  }
  CPD_RETURN_IF_ERROR(delta.Validate());
  if (mapped->generation() != delta.base_generation) {
    return Status::FailedPrecondition(StrFormat(
        "model delta: patches generation %llu but the mapped artifact is "
        "generation %llu",
        static_cast<unsigned long long>(delta.base_generation),
        static_cast<unsigned long long>(mapped->generation())));
  }
  if (mapped->num_communities() != delta.num_communities ||
      mapped->num_topics() != delta.num_topics ||
      mapped->num_time_bins() != delta.num_time_bins) {
    return Status::InvalidArgument(
        "model delta: base artifact disagrees on |C|/|Z|/T");
  }
  if (mapped->num_users() != delta.base_num_users ||
      mapped->vocab_size() != delta.base_vocab_size) {
    return Status::InvalidArgument(StrFormat(
        "model delta: expects a base with |U|=%llu |W|=%llu, got |U|=%llu "
        "|W|=%llu",
        static_cast<unsigned long long>(delta.base_num_users),
        static_cast<unsigned long long>(delta.base_vocab_size),
        static_cast<unsigned long long>(mapped->num_users()),
        static_cast<unsigned long long>(mapped->vocab_size())));
  }
  ProfileIndex index;
  index.options_ = options;
  index.num_communities_ = delta.num_communities;
  index.num_topics_ = delta.num_topics;
  index.num_users_ = static_cast<size_t>(delta.num_users);
  index.vocab_size_ = static_cast<size_t>(delta.vocab_size);
  index.num_time_bins_ = delta.num_time_bins;
  index.generation_ = delta.generation;
  // Copy-on-write pi: every untouched row keeps aliasing the shared
  // mapping; only the delta's packed rows occupy new heap. Users new in
  // this generation have no base row — delta.Validate() guarantees each
  // is touched, so every slot gets a pointer below.
  index.delta_pi_store_ = delta.touched_pi;
  index.pi_rows_.assign(index.num_users_, nullptr);
  const double* base_pi = mapped->pi().data();
  for (size_t u = 0; u < static_cast<size_t>(delta.base_num_users); ++u) {
    index.pi_rows_[u] = base_pi + u * index.kc();
  }
  for (size_t i = 0; i < delta.touched_users.size(); ++i) {
    index.pi_rows_[static_cast<size_t>(delta.touched_users[i])] =
        index.delta_pi_store_.data() + i * index.kc();
  }
  // The globals are O(|C||Z| + |Z||W|) and fully refreshed every sweep, so
  // the delta ships them whole; adopt copies.
  index.theta_store_ = delta.theta;
  index.phi_store_ = delta.phi;
  index.eta_store_ = delta.eta;
  index.weights_store_ = delta.weights;
  index.popularity_store_ = delta.popularity;
  index.theta_ = index.theta_store_;
  index.phi_ = index.phi_store_;
  index.eta_ = index.eta_store_;
  index.weights_ = index.weights_store_;
  index.popularity_ = index.popularity_store_;
  // eta and pi both changed, so the stored derived sections describe the
  // base generation — rebuild over the overlay.
  index.RebuildDerived();
  index.BuildScoringTables();
  index.mapped_ = std::move(mapped);
  return index;
}

StatusOr<ProfileIndex> ProfileIndex::LoadFromFile(
    const std::string& path, const ProfileIndexOptions& options) {
  auto bundle = LoadModelBundle(path, options);
  if (!bundle.ok()) return bundle.status();
  return std::move(bundle->index);
}

StatusOr<ModelBundle> LoadModelBundle(const std::string& path,
                                      const ProfileIndexOptions& options) {
  if (options.load_mode != ArtifactLoadMode::kHeap) {
    auto mapped = MappedModelArtifact::Open(path);
    if (mapped.ok()) {
      std::shared_ptr<const Vocabulary> vocabulary;
      if ((*mapped)->has_vocabulary()) {
        auto vocab = std::make_shared<Vocabulary>();
        CPD_RETURN_IF_ERROR((*mapped)->BuildVocabulary(vocab.get()));
        vocabulary = std::move(vocab);
      }
      auto index = ProfileIndex::FromMapped(std::move(*mapped), options);
      if (!index.ok()) return index.status();
      return ModelBundle{std::move(*index), std::move(vocabulary)};
    }
    if (options.load_mode == ArtifactLoadMode::kMmap) {
      return mapped.status();
    }
    // kAuto: any mmap failure (v1/v2 artifact, text model, corrupt or
    // missing file) falls through to the reference heap loader, which
    // loads the legacy formats and re-derives the same typed error for a
    // genuinely bad file — so kAuto surfaces exactly the errors the heap
    // path always has.
  }
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  if (LooksLikeModelArtifact(*contents)) {
    auto artifact = DecodeModelArtifact(*contents);
    if (!artifact.ok()) {
      return Status(artifact.status().code(),
                    artifact.status().message() + ": " + path);
    }
    std::shared_ptr<const Vocabulary> vocabulary;
    if (artifact->has_vocabulary()) {
      // Extract before FromArtifact moves the matrices out.
      auto vocab = std::make_shared<Vocabulary>();
      CPD_RETURN_IF_ERROR(artifact->BuildVocabulary(vocab.get()));
      vocabulary = std::move(vocab);
    }
    auto index = ProfileIndex::FromArtifact(std::move(*artifact), options);
    if (!index.ok()) return index.status();
    return ModelBundle{std::move(*index), std::move(vocabulary)};
  }
  auto model = CpdModel::LoadFromFile(path);
  if (!model.ok()) return model.status();
  auto index = ProfileIndex::FromArtifact(model->ToArtifact(), options);
  if (!index.ok()) return index.status();
  return ModelBundle{std::move(*index), nullptr};
}

void ProfileIndex::BuildPiRows(const double* pi) {
  pi_rows_.resize(num_users_);
  for (size_t u = 0; u < num_users_; ++u) {
    pi_rows_[u] = pi + u * kc();
  }
}

void ProfileIndex::RebuildDerived() {
  const int wanted_k = options_.build_membership_index
                           ? std::min(options_.membership_top_k,
                                      num_communities_)
                           : 0;
  ArtifactDerived derived =
      BuildArtifactDerived(pi_rows_.data(), eta_, num_communities_,
                           num_topics_, num_users_, wanted_k);
  AdoptDerived(std::move(derived));
}

void ProfileIndex::AdoptDerived(ArtifactDerived&& derived) {
  eta_agg_store_ = std::move(derived.eta_agg);
  eta_agg_ = eta_agg_store_;
  if (derived.top_k == 0) {
    top_k_per_user_ = 0;
    member_offsets_store_.assign(kc() + 1, 0);
    member_offsets_ = member_offsets_store_;
    members_ = {};
    member_weights_ = {};
    return;
  }
  top_k_per_user_ = derived.top_k;
  MaterializeTopMemberships(derived.topk_communities, derived.topk_weights);
  member_offsets_store_ = std::move(derived.member_offsets);
  members_store_ = std::move(derived.members);
  member_weights_store_ = std::move(derived.member_weights);
  member_offsets_ = member_offsets_store_;
  members_ = members_store_;
  member_weights_ = member_weights_store_;
}

void ProfileIndex::MaterializeTopMemberships(
    std::span<const int32_t> communities, std::span<const double> weights) {
  top_memberships_.resize(communities.size());
  for (size_t i = 0; i < communities.size(); ++i) {
    top_memberships_[i] = {static_cast<int>(communities[i]), weights[i]};
  }
}

void ProfileIndex::BuildScoringTables() {
  if (!options_.precompute_scoring) return;
  const size_t c_count = kc();
  const size_t z_count = kz();
  // Fused eta*theta rows, (c,z)-major: G[c][z][c2] = eta(c,c2,z) *
  // theta_c2[z]. One multiply per cell, so dotting a row with pi_v
  // reproduces the reference kernel's ((eta*theta)*pi_v) grouping
  // bit-for-bit.
  eta_theta_.assign(c_count * z_count * c_count, 0.0);
  for (size_t c = 0; c < c_count; ++c) {
    for (size_t c2 = 0; c2 < c_count; ++c2) {
      const double* eta_row = eta_.data() + (c * c_count + c2) * z_count;
      const double* theta_row = theta_.data() + c2 * z_count;
      for (size_t z = 0; z < z_count; ++z) {
        eta_theta_[(c * z_count + z) * c_count + c2] =
            eta_row[z] * theta_row[z];
      }
    }
  }
  // M[c][z] = sum_c2 G[c][z][c2], c2 ascending — the same accumulation
  // the reference Eq. 19 kernel performs per request.
  link_content_.assign(c_count * z_count, 0.0);
  for (size_t c = 0; c < c_count; ++c) {
    for (size_t z = 0; z < z_count; ++z) {
      const double* row = eta_theta_.data() + (c * z_count + z) * c_count;
      double total = 0.0;
      for (size_t c2 = 0; c2 < c_count; ++c2) total += row[c2];
      link_content_[c * z_count + z] = total;
    }
  }
  // Word-major log-phi: the same floored std::log the reference kernels
  // apply per token, hoisted to build time and transposed so a query
  // word's topic row is contiguous.
  word_log_phi_.assign(vocab_size_ * z_count, 0.0);
  for (size_t z = 0; z < z_count; ++z) {
    const double* phi_row = phi_.data() + z * vocab_size_;
    for (size_t w = 0; w < vocab_size_; ++w) {
      word_log_phi_[w * z_count + z] =
          std::log(std::max(phi_row[w], 1e-300));
    }
  }
}

double ProfileIndex::TopicPopularity(int32_t t, int z) const {
  t = std::min(std::max(t, 0), num_time_bins_ - 1);
  return popularity_[static_cast<size_t>(t) * kz() + static_cast<size_t>(z)];
}

Status ProfileIndex::CheckUser(UserId u) const {
  if (u < 0 || static_cast<size_t>(u) >= num_users_) {
    return Status::OutOfRange(
        StrFormat("user %d outside [0, %zu)", u, num_users_));
  }
  return Status::OK();
}

Status ProfileIndex::CheckCommunity(int c) const {
  if (c < 0 || c >= num_communities_) {
    return Status::OutOfRange(
        StrFormat("community %d outside [0, %d)", c, num_communities_));
  }
  return Status::OK();
}

Status ProfileIndex::CheckWord(WordId w) const {
  if (w < 0 || static_cast<size_t>(w) >= vocab_size_) {
    return Status::OutOfRange(
        StrFormat("word %d outside [0, %zu)", w, vocab_size_));
  }
  return Status::OK();
}

Status ProfileIndex::CheckTopic(int z) const {
  if (z < 0 || z >= num_topics_) {
    return Status::OutOfRange(
        StrFormat("topic %d outside [0, %d)", z, num_topics_));
  }
  return Status::OK();
}

}  // namespace cpd::serve
