#include "serve/profile_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/cpd_model.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpd::serve {

ProfileIndex ProfileIndex::FromModel(const CpdModel& model,
                                     const ProfileIndexOptions& options) {
  // Reuse the artifact struct as the common ingestion path so the from-model
  // and from-file constructions cannot diverge.
  ProfileIndexOptions resolved = options;
  resolved.heterogeneous_links =
      options.heterogeneous_links &&
      model.config().ablation.heterogeneous_links;
  auto index = FromArtifact(model.ToArtifact(), resolved);
  // A trained model always yields a valid artifact.
  CPD_CHECK(index.ok());
  return std::move(*index);
}

StatusOr<ProfileIndex> ProfileIndex::FromArtifact(
    ModelArtifact artifact, const ProfileIndexOptions& options) {
  CPD_RETURN_IF_ERROR(artifact.Validate());
  if (options.membership_top_k < 1) {
    return Status::InvalidArgument("membership_top_k < 1");
  }
  ProfileIndex index;
  index.options_ = options;
  index.num_communities_ = artifact.num_communities;
  index.num_topics_ = artifact.num_topics;
  index.num_users_ = artifact.num_users;
  index.vocab_size_ = artifact.vocab_size;
  index.num_time_bins_ = artifact.num_time_bins;
  index.pi_ = std::move(artifact.pi);
  index.theta_ = std::move(artifact.theta);
  index.phi_ = std::move(artifact.phi);
  index.eta_ = std::move(artifact.eta);
  index.weights_ = std::move(artifact.weights);
  index.popularity_ = std::move(artifact.popularity);
  index.BuildDerived();
  return index;
}

StatusOr<ProfileIndex> ProfileIndex::LoadFromFile(
    const std::string& path, const ProfileIndexOptions& options) {
  auto bundle = LoadModelBundle(path, options);
  if (!bundle.ok()) return bundle.status();
  return std::move(bundle->index);
}

StatusOr<ModelBundle> LoadModelBundle(const std::string& path,
                                      const ProfileIndexOptions& options) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  if (LooksLikeModelArtifact(*contents)) {
    auto artifact = DecodeModelArtifact(*contents);
    if (!artifact.ok()) {
      return Status(artifact.status().code(),
                    artifact.status().message() + ": " + path);
    }
    std::shared_ptr<const Vocabulary> vocabulary;
    if (artifact->has_vocabulary()) {
      // Extract before FromArtifact moves the matrices out.
      auto vocab = std::make_shared<Vocabulary>();
      CPD_RETURN_IF_ERROR(artifact->BuildVocabulary(vocab.get()));
      vocabulary = std::move(vocab);
    }
    auto index = ProfileIndex::FromArtifact(std::move(*artifact), options);
    if (!index.ok()) return index.status();
    return ModelBundle{std::move(*index), std::move(vocabulary)};
  }
  auto model = CpdModel::LoadFromFile(path);
  if (!model.ok()) return model.status();
  auto index = ProfileIndex::FromArtifact(model->ToArtifact(), options);
  if (!index.ok()) return index.status();
  return ModelBundle{std::move(*index), nullptr};
}

void ProfileIndex::BuildDerived() {
  const size_t c_count = kc();
  const size_t z_count = kz();

  eta_agg_.assign(c_count * c_count, 0.0);
  for (size_t c = 0; c < c_count; ++c) {
    for (size_t c2 = 0; c2 < c_count; ++c2) {
      // Same accumulation order as CpdModel::EtaAggregated so the two read
      // paths agree bitwise.
      double total = 0.0;
      const double* row = eta_.data() + (c * c_count + c2) * z_count;
      for (size_t z = 0; z < z_count; ++z) total += row[z];
      eta_agg_[c * c_count + c2] = total;
    }
  }

  if (options_.precompute_scoring) {
    // Fused eta*theta rows, (c,z)-major: G[c][z][c2] = eta(c,c2,z) *
    // theta_c2[z]. One multiply per cell, so dotting a row with pi_v
    // reproduces the reference kernel's ((eta*theta)*pi_v) grouping
    // bit-for-bit.
    eta_theta_.assign(c_count * z_count * c_count, 0.0);
    for (size_t c = 0; c < c_count; ++c) {
      for (size_t c2 = 0; c2 < c_count; ++c2) {
        const double* eta_row = eta_.data() + (c * c_count + c2) * z_count;
        const double* theta_row = theta_.data() + c2 * z_count;
        for (size_t z = 0; z < z_count; ++z) {
          eta_theta_[(c * z_count + z) * c_count + c2] =
              eta_row[z] * theta_row[z];
        }
      }
    }
    // M[c][z] = sum_c2 G[c][z][c2], c2 ascending — the same accumulation
    // the reference Eq. 19 kernel performs per request.
    link_content_.assign(c_count * z_count, 0.0);
    for (size_t c = 0; c < c_count; ++c) {
      for (size_t z = 0; z < z_count; ++z) {
        const double* row = eta_theta_.data() + (c * z_count + z) * c_count;
        double total = 0.0;
        for (size_t c2 = 0; c2 < c_count; ++c2) total += row[c2];
        link_content_[c * z_count + z] = total;
      }
    }
    // Word-major log-phi: the same floored std::log the reference kernels
    // apply per token, hoisted to build time and transposed so a query
    // word's topic row is contiguous.
    word_log_phi_.assign(vocab_size_ * z_count, 0.0);
    for (size_t z = 0; z < z_count; ++z) {
      const double* phi_row = phi_.data() + z * vocab_size_;
      for (size_t w = 0; w < vocab_size_; ++w) {
        word_log_phi_[w * z_count + z] =
            std::log(std::max(phi_row[w], 1e-300));
      }
    }
  }

  member_offsets_.assign(c_count + 1, 0);
  if (!options_.build_membership_index) {
    top_k_per_user_ = 0;
    return;
  }
  top_k_per_user_ = std::min(options_.membership_top_k, num_communities_);
  const size_t k = static_cast<size_t>(top_k_per_user_);
  top_memberships_.assign(num_users_ * k, TopMembership{});
  std::vector<int> order(c_count);
  for (size_t u = 0; u < num_users_; ++u) {
    const double* pi = pi_.data() + u * c_count;
    for (size_t c = 0; c < c_count; ++c) order[c] = static_cast<int>(c);
    // Descending weight, ties by ascending community id (matches
    // TopKIndices' stable-sort convention used by CpdModel::TopCommunities).
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(), [pi](int a, int b) {
                        if (pi[a] != pi[b]) return pi[a] > pi[b];
                        return a < b;
                      });
    for (size_t i = 0; i < k; ++i) {
      top_memberships_[u * k + i] = {order[i], pi[static_cast<size_t>(order[i])]};
    }
  }

  // Invert the top-k lists into per-community postings, weight-sorted.
  std::vector<std::vector<UserId>> postings(c_count);
  for (size_t u = 0; u < num_users_; ++u) {
    for (size_t i = 0; i < k; ++i) {
      postings[static_cast<size_t>(top_memberships_[u * k + i].community)]
          .push_back(static_cast<UserId>(u));
    }
  }
  member_offsets_.assign(c_count + 1, 0);
  members_.clear();
  members_.reserve(num_users_ * k);
  member_weights_.clear();
  member_weights_.reserve(num_users_ * k);
  for (size_t c = 0; c < c_count; ++c) {
    auto& users = postings[c];
    std::sort(users.begin(), users.end(), [this, c](UserId a, UserId b) {
      const double wa = pi_[static_cast<size_t>(a) * kc() + c];
      const double wb = pi_[static_cast<size_t>(b) * kc() + c];
      if (wa != wb) return wa > wb;
      return a < b;
    });
    members_.insert(members_.end(), users.begin(), users.end());
    for (const UserId u : users) {
      member_weights_.push_back(pi_[static_cast<size_t>(u) * kc() + c]);
    }
    member_offsets_[c + 1] = members_.size();
  }
}

double ProfileIndex::TopicPopularity(int32_t t, int z) const {
  t = std::min(std::max(t, 0), num_time_bins_ - 1);
  return popularity_[static_cast<size_t>(t) * kz() + static_cast<size_t>(z)];
}

Status ProfileIndex::CheckUser(UserId u) const {
  if (u < 0 || static_cast<size_t>(u) >= num_users_) {
    return Status::OutOfRange(
        StrFormat("user %d outside [0, %zu)", u, num_users_));
  }
  return Status::OK();
}

Status ProfileIndex::CheckCommunity(int c) const {
  if (c < 0 || c >= num_communities_) {
    return Status::OutOfRange(
        StrFormat("community %d outside [0, %d)", c, num_communities_));
  }
  return Status::OK();
}

Status ProfileIndex::CheckWord(WordId w) const {
  if (w < 0 || static_cast<size_t>(w) >= vocab_size_) {
    return Status::OutOfRange(
        StrFormat("word %d outside [0, %zu)", w, vocab_size_));
  }
  return Status::OK();
}

Status ProfileIndex::CheckTopic(int z) const {
  if (z < 0 || z >= num_topics_) {
    return Status::OutOfRange(
        StrFormat("topic %d outside [0, %d)", z, num_topics_));
  }
  return Status::OK();
}

}  // namespace cpd::serve
