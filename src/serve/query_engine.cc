#include "serve/query_engine.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "core/diffusion_features.h"
#include "core/model_state.h"
#include "parallel/thread_pool.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace cpd::serve {

QueryEngine::QueryEngine(const ProfileIndex& index, const SocialGraph* graph)
    : index_(index), graph_(graph) {}

StatusOr<MembershipResponse> QueryEngine::Membership(
    const MembershipRequest& request) const {
  CPD_RETURN_IF_ERROR(index_.CheckUser(request.user));
  if (request.top_k < 0) {
    return Status::InvalidArgument("membership top_k < 0");
  }
  if (!index_.has_membership_index()) {
    return Status::FailedPrecondition(
        "index built without the membership index "
        "(ProfileIndexOptions::build_membership_index)");
  }
  const auto top = index_.TopCommunities(request.user);
  MembershipResponse response;
  const size_t k = request.top_k == 0
                       ? top.size()
                       : std::min(top.size(), static_cast<size_t>(request.top_k));
  response.top.assign(top.begin(), top.begin() + static_cast<long>(k));
  if (request.include_distribution) {
    const auto pi = index_.Membership(request.user);
    response.distribution.assign(pi.begin(), pi.end());
  }
  return response;
}

StatusOr<RankCommunitiesResponse> QueryEngine::RankCommunities(
    const RankCommunitiesRequest& request) const {
  if (request.top_k < 0) return Status::InvalidArgument("rank top_k < 0");
  for (WordId w : request.words) CPD_RETURN_IF_ERROR(index_.CheckWord(w));
  const int kc = index_.num_communities();
  const int kz = index_.num_topics();

  // g_z = prod_{w in q} phi_{z,w}, computed in log space and rescaled by the
  // max to avoid underflow (a global per-z factor cancels in the ranking).
  // An empty query leaves g uniform: Eq. 19 degrades to the prior ranking.
  std::vector<double> log_g(static_cast<size_t>(kz), 0.0);
  for (int z = 0; z < kz; ++z) {
    const auto phi = index_.TopicWords(z);
    double lg = 0.0;
    for (WordId w : request.words) {
      lg += std::log(std::max(phi[static_cast<size_t>(w)], 1e-300));
    }
    log_g[static_cast<size_t>(z)] = lg;
  }
  const double max_log = *std::max_element(log_g.begin(), log_g.end());
  std::vector<double> g(static_cast<size_t>(kz));
  for (int z = 0; z < kz; ++z) {
    g[static_cast<size_t>(z)] =
        std::exp(log_g[static_cast<size_t>(z)] - max_log);
  }

  RankCommunitiesResponse response;
  response.ranked.resize(static_cast<size_t>(kc));
  for (int c = 0; c < kc; ++c) {
    RankedCommunityEntry& entry = response.ranked[static_cast<size_t>(c)];
    entry.community = c;
    entry.topic_distribution.assign(static_cast<size_t>(kz), 0.0);
    double score = 0.0;
    for (int z = 0; z < kz; ++z) {
      double inner = 0.0;
      for (int c2 = 0; c2 < kc; ++c2) {
        inner += index_.Eta(c, c2, z) *
                 index_.ContentProfile(c2)[static_cast<size_t>(z)];
      }
      const double term = inner * g[static_cast<size_t>(z)];
      entry.topic_distribution[static_cast<size_t>(z)] = term;
      score += term;
    }
    entry.score = score;
    if (request.include_topic_distribution) {
      NormalizeInPlace(&entry.topic_distribution);
    } else {
      entry.topic_distribution.clear();
    }
  }
  std::sort(response.ranked.begin(), response.ranked.end(),
            [](const RankedCommunityEntry& a, const RankedCommunityEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.community < b.community;
            });
  if (request.top_k > 0 &&
      response.ranked.size() > static_cast<size_t>(request.top_k)) {
    response.ranked.resize(static_cast<size_t>(request.top_k));
  }
  return response;
}

StatusOr<std::vector<double>> QueryEngine::DocumentTopicPosterior(
    DocId document) const {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition(
        "document topic posterior needs a bound social graph");
  }
  if (document < 0 ||
      static_cast<size_t>(document) >= graph_->num_documents()) {
    return Status::OutOfRange(
        StrFormat("document %d outside [0, %zu)", document,
                  graph_->num_documents()));
  }
  const Document& doc = graph_->document(document);
  // The graph is bound independently of the model, so the author id must be
  // validated against the index (a mismatched --users load must surface as
  // a typed error, not an out-of-bounds read).
  CPD_RETURN_IF_ERROR(index_.CheckUser(doc.user));
  const int kz = index_.num_topics();
  const int kc = index_.num_communities();
  const auto pi_v = index_.Membership(doc.user);

  std::vector<double> log_post(static_cast<size_t>(kz), 0.0);
  for (int z = 0; z < kz; ++z) {
    double prior = 0.0;
    for (int c = 0; c < kc; ++c) {
      prior += pi_v[static_cast<size_t>(c)] *
               index_.ContentProfile(c)[static_cast<size_t>(z)];
    }
    double lp = std::log(std::max(prior, 1e-300));
    const auto phi = index_.TopicWords(z);
    for (WordId w : doc.words) {
      lp += std::log(std::max(phi[static_cast<size_t>(w)], 1e-300));
    }
    log_post[static_cast<size_t>(z)] = lp;
  }
  SoftmaxInPlace(&log_post);
  return log_post;
}

double QueryEngine::CommunityScore(UserId u, UserId v, int z) const {
  const auto pi_u = index_.Membership(u);
  const auto pi_v = index_.Membership(v);
  const int kc = index_.num_communities();
  double score = 0.0;
  for (int c = 0; c < kc; ++c) {
    const double left = pi_u[static_cast<size_t>(c)] *
                        index_.ContentProfile(c)[static_cast<size_t>(z)];
    if (left == 0.0) continue;
    double inner = 0.0;
    for (int c2 = 0; c2 < kc; ++c2) {
      inner += index_.Eta(c, c2, z) *
               index_.ContentProfile(c2)[static_cast<size_t>(z)] *
               pi_v[static_cast<size_t>(c2)];
    }
    score += left * inner;
  }
  return score;
}

double QueryEngine::FriendshipScore(UserId u, UserId v) const {
  const auto pi_u = index_.Membership(u);
  const auto pi_v = index_.Membership(v);
  double dot = 0.0;
  for (size_t c = 0; c < pi_u.size(); ++c) dot += pi_u[c] * pi_v[c];
  return Sigmoid(dot);
}

StatusOr<DiffusionResponse> QueryEngine::Diffusion(
    const DiffusionRequest& request) const {
  CPD_RETURN_IF_ERROR(index_.CheckUser(request.source));
  CPD_RETURN_IF_ERROR(index_.CheckUser(request.target));
  if (graph_ == nullptr) {
    return Status::FailedPrecondition(
        "diffusion queries need a bound social graph (document words and "
        "degree features)");
  }
  DiffusionResponse response;
  response.friendship_score = FriendshipScore(request.source, request.target);
  if (!index_.heterogeneous_links()) {
    // The "no heterogeneity" ablation models diffusion links exactly like
    // friendship links (Eq. 3), so it must predict with that model too.
    response.probability = response.friendship_score;
    return response;
  }
  auto posterior = DocumentTopicPosterior(request.document);
  if (!posterior.ok()) return posterior.status();
  const auto weights = index_.DiffusionWeights();
  double features[kNumUserFeatures];
  LinkCaches::ComputePairFeatures(*graph_, request.source, request.target,
                                  features);
  double feature_part = weights[kWeightBias];
  for (int k = 0; k < kNumUserFeatures; ++k) {
    feature_part += weights[kWeightFeature0 + k] * features[k];
  }
  double probability = 0.0;
  for (int z = 0; z < index_.num_topics(); ++z) {
    const double w =
        weights[kWeightEta] * CommunityScore(request.source, request.target, z) +
        weights[kWeightPopularity] * index_.TopicPopularity(request.time_bin, z) +
        feature_part;
    probability += Sigmoid(w) * (*posterior)[static_cast<size_t>(z)];
  }
  response.probability = probability;
  return response;
}

StatusOr<TopUsersResponse> QueryEngine::TopUsers(
    const TopUsersRequest& request) const {
  CPD_RETURN_IF_ERROR(index_.CheckCommunity(request.community));
  if (request.top_k < 0) return Status::InvalidArgument("top_users top_k < 0");
  if (!index_.has_membership_index()) {
    return Status::FailedPrecondition(
        "index built without the membership index "
        "(ProfileIndexOptions::build_membership_index)");
  }
  const auto members = index_.CommunityMembers(request.community);
  const size_t k = request.top_k == 0
                       ? members.size()
                       : std::min(members.size(),
                                  static_cast<size_t>(request.top_k));
  TopUsersResponse response;
  response.users.assign(members.begin(), members.begin() + static_cast<long>(k));
  response.weights.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    response.weights.push_back(
        index_.Membership(members[i])[static_cast<size_t>(request.community)]);
  }
  return response;
}

namespace {
template <typename T>
StatusOr<QueryResponse> ToQueryResponse(StatusOr<T> response) {
  if (!response.ok()) return response.status();
  return QueryResponse(std::move(*response));
}
}  // namespace

StatusOr<QueryResponse> QueryEngine::Query(const QueryRequest& request) const {
  return std::visit(
      [this](const auto& typed) -> StatusOr<QueryResponse> {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, MembershipRequest>) {
          return ToQueryResponse(Membership(typed));
        } else if constexpr (std::is_same_v<T, RankCommunitiesRequest>) {
          return ToQueryResponse(RankCommunities(typed));
        } else if constexpr (std::is_same_v<T, DiffusionRequest>) {
          return ToQueryResponse(Diffusion(typed));
        } else {
          return ToQueryResponse(TopUsers(typed));
        }
      },
      request);
}

std::vector<StatusOr<QueryResponse>> QueryEngine::QueryBatch(
    std::span<const QueryRequest> requests, ThreadPool* pool) const {
  std::vector<StatusOr<QueryResponse>> responses(
      requests.size(),
      StatusOr<QueryResponse>(Status::Internal("query not executed")));
  if (pool == nullptr || requests.size() <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      responses[i] = Query(requests[i]);
    }
    return responses;
  }
  // Contiguous chunks, a few per worker: one pool task per *chunk* keeps the
  // submit/dequeue overhead negligible against microsecond-scale queries
  // while still load-balancing mixed-cost batches.
  const size_t chunks =
      std::min(requests.size(), pool->num_threads() * size_t{4});
  const size_t per_chunk = (requests.size() + chunks - 1) / chunks;
  ParallelFor(pool, chunks, [this, requests, &responses, per_chunk](size_t chunk) {
    const size_t begin = chunk * per_chunk;
    const size_t end = std::min(requests.size(), begin + per_chunk);
    for (size_t i = begin; i < end; ++i) {
      responses[i] = Query(requests[i]);
    }
  });
  return responses;
}

}  // namespace cpd::serve
