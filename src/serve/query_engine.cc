#include "serve/query_engine.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "core/diffusion_features.h"
#include "core/model_state.h"
#include "parallel/thread_pool.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace cpd::serve {

QueryEngine::QueryEngine(const ProfileIndex& index, const SocialGraph* graph)
    : index_(index), graph_(graph) {}

StatusOr<MembershipResponse> QueryEngine::Membership(
    const MembershipRequest& request) const {
  CPD_RETURN_IF_ERROR(index_.CheckUser(request.user));
  if (request.top_k < 0) {
    return Status::InvalidArgument("membership top_k < 0");
  }
  if (!index_.has_membership_index()) {
    return Status::FailedPrecondition(
        "index built without the membership index "
        "(ProfileIndexOptions::build_membership_index)");
  }
  const auto top = index_.TopCommunities(request.user);
  MembershipResponse response;
  const size_t k = request.top_k == 0
                       ? top.size()
                       : std::min(top.size(), static_cast<size_t>(request.top_k));
  response.top.assign(top.begin(), top.begin() + static_cast<long>(k));
  if (request.include_distribution) {
    const auto pi = index_.Membership(request.user);
    response.distribution.assign(pi.begin(), pi.end());
  }
  return response;
}

StatusOr<RankCommunitiesResponse> QueryEngine::RankCommunities(
    const RankCommunitiesRequest& request) const {
  if (request.top_k < 0) return Status::InvalidArgument("rank top_k < 0");
  for (WordId w : request.words) CPD_RETURN_IF_ERROR(index_.CheckWord(w));
  const int kc = index_.num_communities();
  const int kz = index_.num_topics();
  const bool fast = index_.has_scoring_tables();

  // g_z = prod_{w in q} phi_{z,w}, computed in log space and rescaled by the
  // max to avoid underflow (a global per-z factor cancels in the ranking).
  // An empty query leaves g uniform: Eq. 19 degrades to the prior ranking.
  // The fast path gathers |q| contiguous word-major rows of build-time
  // log-phi; the reference strides |q| full-vocab rows and logs per
  // (token, topic). Both accumulate per topic in word order, so they agree
  // bitwise.
  std::vector<double> log_g(static_cast<size_t>(kz), 0.0);
  if (fast) {
    for (WordId w : request.words) {
      const auto row = index_.WordLogPhi(w);
      for (int z = 0; z < kz; ++z) {
        log_g[static_cast<size_t>(z)] += row[static_cast<size_t>(z)];
      }
    }
  } else {
    for (int z = 0; z < kz; ++z) {
      const auto phi = index_.TopicWords(z);
      double lg = 0.0;
      for (WordId w : request.words) {
        lg += std::log(std::max(phi[static_cast<size_t>(w)], 1e-300));
      }
      log_g[static_cast<size_t>(z)] = lg;
    }
  }
  const double max_log = *std::max_element(log_g.begin(), log_g.end());
  std::vector<double> g(static_cast<size_t>(kz));
  for (int z = 0; z < kz; ++z) {
    g[static_cast<size_t>(z)] =
        std::exp(log_g[static_cast<size_t>(z)] - max_log);
  }

  // Eq. 19 scores into a flat scratch; entries are materialized only for
  // the returned communities. With the precomputed link-content matrix the
  // per-community cost is one length-|Z| dot instead of the O(|C| |Z|)
  // reference recomputation of sum_c2 eta(c,c2,z) theta_c2[z].
  std::vector<double> scores(static_cast<size_t>(kc), 0.0);
  for (int c = 0; c < kc; ++c) {
    double score = 0.0;
    if (fast) {
      const auto m = index_.LinkContentRow(c);
      for (int z = 0; z < kz; ++z) {
        score += m[static_cast<size_t>(z)] * g[static_cast<size_t>(z)];
      }
    } else {
      for (int z = 0; z < kz; ++z) {
        double inner = 0.0;
        for (int c2 = 0; c2 < kc; ++c2) {
          inner += index_.Eta(c, c2, z) *
                   index_.ContentProfile(c2)[static_cast<size_t>(z)];
        }
        score += inner * g[static_cast<size_t>(z)];
      }
    }
    scores[static_cast<size_t>(c)] = score;
  }

  // Rank by (score desc, community asc) — a total order, so the partial
  // nth_element + prefix sort returns exactly the full sort's first k,
  // ties included.
  std::vector<int> order(static_cast<size_t>(kc));
  for (int c = 0; c < kc; ++c) order[static_cast<size_t>(c)] = c;
  const auto better = [&scores](int a, int b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  };
  const size_t k = request.top_k == 0
                       ? static_cast<size_t>(kc)
                       : std::min(static_cast<size_t>(kc),
                                  static_cast<size_t>(request.top_k));
  if (k < static_cast<size_t>(kc)) {
    std::nth_element(order.begin(), order.begin() + static_cast<long>(k),
                     order.end(), better);
    std::sort(order.begin(), order.begin() + static_cast<long>(k), better);
  } else {
    std::sort(order.begin(), order.end(), better);
  }

  RankCommunitiesResponse response;
  response.ranked.resize(k);
  for (size_t i = 0; i < k; ++i) {
    const int c = order[i];
    RankedCommunityEntry& entry = response.ranked[i];
    entry.community = c;
    entry.score = scores[static_cast<size_t>(c)];
    if (!request.include_topic_distribution) continue;
    // p(z | q, c), recomputed for returned entries only (identically to
    // the scoring loop above, so normalization sees the same terms).
    entry.topic_distribution.assign(static_cast<size_t>(kz), 0.0);
    if (fast) {
      const auto m = index_.LinkContentRow(c);
      for (int z = 0; z < kz; ++z) {
        entry.topic_distribution[static_cast<size_t>(z)] =
            m[static_cast<size_t>(z)] * g[static_cast<size_t>(z)];
      }
    } else {
      for (int z = 0; z < kz; ++z) {
        double inner = 0.0;
        for (int c2 = 0; c2 < kc; ++c2) {
          inner += index_.Eta(c, c2, z) *
                   index_.ContentProfile(c2)[static_cast<size_t>(z)];
        }
        entry.topic_distribution[static_cast<size_t>(z)] =
            inner * g[static_cast<size_t>(z)];
      }
    }
    NormalizeInPlace(&entry.topic_distribution);
  }
  return response;
}

StatusOr<std::vector<double>> QueryEngine::DocumentTopicPosterior(
    DocId document) const {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition(
        "document topic posterior needs a bound social graph");
  }
  if (document < 0 ||
      static_cast<size_t>(document) >= graph_->num_documents()) {
    return Status::OutOfRange(
        StrFormat("document %d outside [0, %zu)", document,
                  graph_->num_documents()));
  }
  const Document& doc = graph_->document(document);
  // The graph is bound independently of the model, so the author id must be
  // validated against the index (a mismatched --users load must surface as
  // a typed error, not an out-of-bounds read).
  CPD_RETURN_IF_ERROR(index_.CheckUser(doc.user));
  const int kz = index_.num_topics();
  const int kc = index_.num_communities();
  const auto pi_v = index_.Membership(doc.user);

  std::vector<double> log_post(static_cast<size_t>(kz), 0.0);
  for (int z = 0; z < kz; ++z) {
    double prior = 0.0;
    for (int c = 0; c < kc; ++c) {
      prior += pi_v[static_cast<size_t>(c)] *
               index_.ContentProfile(c)[static_cast<size_t>(z)];
    }
    log_post[static_cast<size_t>(z)] = std::log(std::max(prior, 1e-300));
  }
  // Word term: gather |doc| contiguous word-major log-phi rows when
  // precomputed; both paths add words in document order on top of the
  // prior, so they agree bitwise.
  if (index_.has_scoring_tables()) {
    for (WordId w : doc.words) {
      const auto row = index_.WordLogPhi(w);
      for (int z = 0; z < kz; ++z) {
        log_post[static_cast<size_t>(z)] += row[static_cast<size_t>(z)];
      }
    }
  } else {
    for (int z = 0; z < kz; ++z) {
      const auto phi = index_.TopicWords(z);
      double lp = log_post[static_cast<size_t>(z)];
      for (WordId w : doc.words) {
        lp += std::log(std::max(phi[static_cast<size_t>(w)], 1e-300));
      }
      log_post[static_cast<size_t>(z)] = lp;
    }
  }
  SoftmaxInPlace(&log_post);
  return log_post;
}

double QueryEngine::CommunityScore(UserId u, UserId v, int z) const {
  const auto pi_u = index_.Membership(u);
  const auto pi_v = index_.Membership(v);
  const int kc = index_.num_communities();
  double score = 0.0;
  if (index_.has_scoring_tables()) {
    // Fused rows G[c][z][c2] = eta(c,c2,z)*theta_c2[z]: the inner loop is
    // one contiguous dot with pi_v, the same ((eta*theta)*pi_v) grouping
    // as the reference below.
    for (int c = 0; c < kc; ++c) {
      const double left = pi_u[static_cast<size_t>(c)] *
                          index_.ContentProfile(c)[static_cast<size_t>(z)];
      if (left == 0.0) continue;
      const auto row = index_.EtaThetaRow(c, z);
      double inner = 0.0;
      for (int c2 = 0; c2 < kc; ++c2) {
        inner += row[static_cast<size_t>(c2)] * pi_v[static_cast<size_t>(c2)];
      }
      score += left * inner;
    }
    return score;
  }
  for (int c = 0; c < kc; ++c) {
    const double left = pi_u[static_cast<size_t>(c)] *
                        index_.ContentProfile(c)[static_cast<size_t>(z)];
    if (left == 0.0) continue;
    double inner = 0.0;
    for (int c2 = 0; c2 < kc; ++c2) {
      inner += index_.Eta(c, c2, z) *
               index_.ContentProfile(c2)[static_cast<size_t>(z)] *
               pi_v[static_cast<size_t>(c2)];
    }
    score += left * inner;
  }
  return score;
}

double QueryEngine::FriendshipScore(UserId u, UserId v) const {
  const auto pi_u = index_.Membership(u);
  const auto pi_v = index_.Membership(v);
  double dot = 0.0;
  for (size_t c = 0; c < pi_u.size(); ++c) dot += pi_u[c] * pi_v[c];
  return Sigmoid(dot);
}

StatusOr<DiffusionResponse> QueryEngine::Diffusion(
    const DiffusionRequest& request) const {
  CPD_RETURN_IF_ERROR(index_.CheckUser(request.source));
  CPD_RETURN_IF_ERROR(index_.CheckUser(request.target));
  if (graph_ == nullptr) {
    return Status::FailedPrecondition(
        "diffusion queries need a bound social graph (document words and "
        "degree features)");
  }
  DiffusionResponse response;
  response.friendship_score = FriendshipScore(request.source, request.target);
  if (!index_.heterogeneous_links()) {
    // The "no heterogeneity" ablation models diffusion links exactly like
    // friendship links (Eq. 3), so it must predict with that model too.
    response.probability = response.friendship_score;
    return response;
  }
  auto posterior = DocumentTopicPosterior(request.document);
  if (!posterior.ok()) return posterior.status();
  const auto weights = index_.DiffusionWeights();
  double features[kNumUserFeatures];
  LinkCaches::ComputePairFeatures(*graph_, request.source, request.target,
                                  features);
  double feature_part = weights[kWeightBias];
  for (int k = 0; k < kNumUserFeatures; ++k) {
    feature_part += weights[kWeightFeature0 + k] * features[k];
  }
  double probability = 0.0;
  for (int z = 0; z < index_.num_topics(); ++z) {
    const double w =
        weights[kWeightEta] * CommunityScore(request.source, request.target, z) +
        weights[kWeightPopularity] * index_.TopicPopularity(request.time_bin, z) +
        feature_part;
    probability += Sigmoid(w) * (*posterior)[static_cast<size_t>(z)];
  }
  response.probability = probability;
  return response;
}

StatusOr<TopUsersResponse> QueryEngine::TopUsers(
    const TopUsersRequest& request) const {
  CPD_RETURN_IF_ERROR(index_.CheckCommunity(request.community));
  if (request.top_k < 0) return Status::InvalidArgument("top_users top_k < 0");
  if (!index_.has_membership_index()) {
    return Status::FailedPrecondition(
        "index built without the membership index "
        "(ProfileIndexOptions::build_membership_index)");
  }
  const auto members = index_.CommunityMembers(request.community);
  const auto weights = index_.CommunityMemberWeights(request.community);
  const size_t k = request.top_k == 0
                       ? members.size()
                       : std::min(members.size(),
                                  static_cast<size_t>(request.top_k));
  TopUsersResponse response;
  // Both answers come straight off the posting — the weights were stored
  // next to the user ids at build time, so no per-member pi row reads.
  response.users.assign(members.begin(), members.begin() + static_cast<long>(k));
  response.weights.assign(weights.begin(), weights.begin() + static_cast<long>(k));
  return response;
}

namespace {
template <typename T>
StatusOr<QueryResponse> ToQueryResponse(StatusOr<T> response) {
  if (!response.ok()) return response.status();
  return QueryResponse(std::move(*response));
}
}  // namespace

StatusOr<QueryResponse> QueryEngine::Query(const QueryRequest& request) const {
  return std::visit(
      [this](const auto& typed) -> StatusOr<QueryResponse> {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, MembershipRequest>) {
          return ToQueryResponse(Membership(typed));
        } else if constexpr (std::is_same_v<T, RankCommunitiesRequest>) {
          return ToQueryResponse(RankCommunities(typed));
        } else if constexpr (std::is_same_v<T, DiffusionRequest>) {
          return ToQueryResponse(Diffusion(typed));
        } else {
          return ToQueryResponse(TopUsers(typed));
        }
      },
      request);
}

std::vector<StatusOr<QueryResponse>> QueryEngine::QueryBatch(
    std::span<const QueryRequest> requests, ThreadPool* pool) const {
  std::vector<StatusOr<QueryResponse>> responses(
      requests.size(),
      StatusOr<QueryResponse>(Status::Internal("query not executed")));
  if (pool == nullptr || requests.size() <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      responses[i] = Query(requests[i]);
    }
    return responses;
  }
  // Contiguous chunks, a few per worker: one pool task per *chunk* keeps the
  // submit/dequeue overhead negligible against microsecond-scale queries
  // while still load-balancing mixed-cost batches.
  const size_t chunks =
      std::min(requests.size(), pool->num_threads() * size_t{4});
  const size_t per_chunk = (requests.size() + chunks - 1) / chunks;
  ParallelFor(pool, chunks, [this, requests, &responses, per_chunk](size_t chunk) {
    const size_t begin = chunk * per_chunk;
    const size_t end = std::min(requests.size(), begin + per_chunk);
    for (size_t i = begin; i < end; ++i) {
      responses[i] = Query(requests[i]);
    }
  });
  return responses;
}

}  // namespace cpd::serve
