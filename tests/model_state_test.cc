#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/model_state.h"
#include "test_util.h"

namespace cpd {
namespace {

CpdConfig SmallConfig() {
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  return config;
}

TEST(ModelStateTest, CountsConsistentAfterRebuild) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  const CpdConfig config = SmallConfig();
  ModelState state(graph, config);
  Rng rng(1);
  state.InitializeRandom(graph, &rng);
  state.RebuildCounts(graph);

  // Totals must match document/word counts.
  int64_t total_docs_by_uc = 0;
  for (int32_t c : state.n_uc) total_docs_by_uc += c;
  EXPECT_EQ(total_docs_by_uc, static_cast<int64_t>(graph.num_documents()));

  int64_t total_docs_by_cz = 0;
  for (int32_t c : state.n_cz) total_docs_by_cz += c;
  EXPECT_EQ(total_docs_by_cz, static_cast<int64_t>(graph.num_documents()));

  int64_t total_docs_by_c = 0;
  for (int32_t c : state.n_c) total_docs_by_c += c;
  EXPECT_EQ(total_docs_by_c, static_cast<int64_t>(graph.num_documents()));

  int64_t total_words = 0;
  for (int64_t c : state.n_z) total_words += c;
  EXPECT_EQ(total_words, graph.corpus().total_tokens());

  // Per-user totals match.
  for (size_t u = 0; u < graph.num_users(); ++u) {
    EXPECT_EQ(state.n_u[u],
              static_cast<int32_t>(graph.DocumentsOf(static_cast<UserId>(u)).size()));
  }
}

TEST(ModelStateTest, PiHatIsDistribution) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  const CpdConfig config = SmallConfig();
  ModelState state(graph, config);
  Rng rng(2);
  state.InitializeRandom(graph, &rng);
  state.RebuildCounts(graph);
  for (size_t u = 0; u < graph.num_users(); ++u) {
    double total = 0.0;
    for (int c = 0; c < config.num_communities; ++c) {
      const double p = state.PiHat(static_cast<UserId>(u), c);
      EXPECT_GT(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ModelStateTest, ThetaPhiAreDistributions) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  const CpdConfig config = SmallConfig();
  ModelState state(graph, config);
  Rng rng(3);
  state.InitializeRandom(graph, &rng);
  state.RebuildCounts(graph);
  for (int c = 0; c < config.num_communities; ++c) {
    double total = 0.0;
    for (int z = 0; z < config.num_topics; ++z) total += state.ThetaHat(c, z);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int z = 0; z < config.num_topics; ++z) {
    double total = 0.0;
    for (size_t w = 0; w < state.vocab_size; ++w) {
      total += state.PhiHat(z, static_cast<WordId>(w));
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ModelStateTest, MembershipDotBounded) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  ModelState state(graph, SmallConfig());
  Rng rng(4);
  state.InitializeRandom(graph, &rng);
  state.RebuildCounts(graph);
  const double dot = state.MembershipDot(0, 1);
  EXPECT_GT(dot, 0.0);
  EXPECT_LE(dot, 1.0);
}

TEST(ModelStateTest, EtaInitializedUniform) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  const CpdConfig config = SmallConfig();
  ModelState state(graph, config);
  double row_total = 0.0;
  for (int c2 = 0; c2 < config.num_communities; ++c2) {
    for (int z = 0; z < config.num_topics; ++z) row_total += state.EtaAt(0, c2, z);
  }
  EXPECT_NEAR(row_total, 1.0, 1e-9);
}

TEST(ModelStateTest, AblatedPopularityWeightZero) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  CpdConfig config = SmallConfig();
  config.ablation.topic_factor = false;
  ModelState state(graph, config);
  EXPECT_DOUBLE_EQ(state.weights[kWeightPopularity], 0.0);
  CpdConfig full = SmallConfig();
  ModelState full_state(graph, full);
  EXPECT_DOUBLE_EQ(full_state.weights[kWeightPopularity], 1.0);
}

TEST(PopularityTableTest, FractionModeSumsToOnePerBin) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  PopularityTable table(graph.num_time_bins(), 6, PopularityMode::kFraction);
  std::vector<int32_t> topics(graph.num_documents(), 0);
  for (size_t d = 0; d < topics.size(); ++d) topics[d] = static_cast<int32_t>(d % 6);
  table.Refresh(graph, topics);
  for (int32_t t = 0; t < graph.num_time_bins(); ++t) {
    double total = 0.0;
    int64_t raw = 0;
    for (int z = 0; z < 6; ++z) {
      total += table.Value(t, z);
      raw += table.RawCount(t, z);
    }
    if (raw > 0) {
      EXPECT_NEAR(total, 1.0, 1e-9) << "bin " << t;
    } else {
      EXPECT_DOUBLE_EQ(total, 0.0);
    }
  }
}

TEST(ModelStateTest, DocWordViewMatchesDocuments) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  ModelState state(graph, SmallConfig());
  ASSERT_EQ(state.doc_words.offsets.size(), graph.num_documents() + 1);
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    const Document& doc = graph.document(static_cast<DocId>(d));
    const auto row = state.doc_words.Row(static_cast<DocId>(d));
    // Multiplicities must sum to the document length, and every (word,
    // count) pair must match a brute-force recount.
    int64_t total = 0;
    for (const SparseCount& entry : row) {
      EXPECT_GT(entry.count, 0);
      int64_t expected = 0;
      for (WordId w : doc.words) {
        if (static_cast<int32_t>(w) == entry.index) ++expected;
      }
      EXPECT_EQ(entry.count, expected) << "doc " << d << " word " << entry.index;
      total += entry.count;
    }
    EXPECT_EQ(total, static_cast<int64_t>(doc.words.size()));
  }
}

TEST(ModelStateTest, NonzeroUserCommunitiesMatchesDenseRow) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  ModelState state(graph, SmallConfig());
  Rng rng(3);
  state.InitializeRandom(graph, &rng);
  state.RebuildCounts(graph);
  std::vector<SparseCount> nonzero;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    state.NonzeroUserCommunities(static_cast<UserId>(u), &nonzero);
    int64_t total = 0;
    for (const SparseCount& entry : nonzero) {
      EXPECT_EQ(entry.count,
                state.n_uc[u * static_cast<size_t>(state.num_communities) +
                           static_cast<size_t>(entry.index)]);
      EXPECT_NE(entry.count, 0);
      total += entry.count;
    }
    EXPECT_EQ(total, state.n_u[u]);
  }
}

// The cached row view must agree with the fresh scan entry-for-entry
// (modulo ordering) after any sequence of write-through updates.
void ExpectRowMatchesScan(ModelState* state, UserId u) {
  std::vector<SparseCount> scan;
  state->NonzeroUserCommunities(u, &scan);
  const auto cached = state->UserCommunityRow(u);
  ASSERT_EQ(cached.size(), scan.size()) << "user " << u;
  std::vector<SparseCount> sorted_cached(cached.begin(), cached.end());
  std::sort(sorted_cached.begin(), sorted_cached.end(),
            [](const SparseCount& a, const SparseCount& b) {
              return a.index < b.index;
            });
  for (size_t i = 0; i < scan.size(); ++i) {
    EXPECT_EQ(sorted_cached[i], scan[i]) << "user " << u << " entry " << i;
  }
}

TEST(ModelStateTest, UserCommunityRowCacheTracksBumps) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  ModelState state(graph, SmallConfig());
  Rng rng(5);
  state.InitializeRandom(graph, &rng);
  state.RebuildCounts(graph);

  // Build every row, then shuffle documents between communities through the
  // write-through path and re-verify against fresh scans: entries must
  // adjust in place, vanish at zero, and reappear on re-entry.
  for (size_t u = 0; u < graph.num_users(); ++u) {
    ExpectRowMatchesScan(&state, static_cast<UserId>(u));
  }
  Rng moves(7);
  for (int step = 0; step < 200; ++step) {
    const UserId u = static_cast<UserId>(moves.NextUint64(graph.num_users()));
    if (state.n_u[static_cast<size_t>(u)] == 0) continue;
    // Move one document of u from a currently occupied community to a
    // random one (possibly re-entering an empty community).
    const auto row = state.UserCommunityRow(u);
    const SparseCount from = row[moves.NextUint64(row.size())];
    const int to = static_cast<int>(
        moves.NextUint64(static_cast<uint64_t>(state.num_communities)));
    state.BumpUserCommunity(u, from.index, -1);
    state.BumpUserCommunity(u, to, 1);
    ExpectRowMatchesScan(&state, u);
  }
}

TEST(ModelStateTest, UserCommunityRowCacheInvalidation) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  ModelState state(graph, SmallConfig());
  Rng rng(9);
  state.InitializeRandom(graph, &rng);
  state.RebuildCounts(graph);
  const UserId u = 0;
  ASSERT_GT(state.n_u[0], 0);
  (void)state.UserCommunityRow(u);

  // A bulk rewrite behind the cache's back followed by invalidation must
  // rebuild the row from the new counters.
  ModelState other(graph, SmallConfig());
  Rng other_rng(11);
  other.InitializeRandom(graph, &other_rng);
  other.RebuildCounts(graph);
  state.n_uc = other.n_uc;
  state.n_u = other.n_u;
  state.InvalidateUserCommunityRows();
  ExpectRowMatchesScan(&state, u);

  // Per-user invalidation only drops the named rows.
  (void)state.UserCommunityRow(1);
  const std::vector<UserId> users = {u};
  state.InvalidateUserCommunityRows(users);
  ExpectRowMatchesScan(&state, u);
  ExpectRowMatchesScan(&state, 1);

  // RebuildCounts invalidates implicitly.
  state.RebuildCounts(graph);
  ExpectRowMatchesScan(&state, u);
}

TEST(LinkCachesTest, FriendLinkIncidence) {
  const SocialGraph graph = testing::MakeHandGraph();
  LinkCaches caches(graph);
  // User 1 touches links (0,1),(1,0),(1,2) -> 3 incident links.
  EXPECT_EQ(caches.FriendLinksOf(1).size(), 3u);
  EXPECT_EQ(caches.FriendLinksOf(0).size(), 2u);
}

TEST(LinkCachesTest, FeaturesAreFinite) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  LinkCaches caches(graph);
  for (size_t e = 0; e < graph.num_diffusion_links(); ++e) {
    for (double f : caches.Features(e)) {
      EXPECT_TRUE(std::isfinite(f));
    }
  }
}

}  // namespace
}  // namespace cpd
