#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <variant>

#include "server/json_api.h"
#include "serve/query_engine.h"

namespace cpd {
namespace {

// ----- writer -----

TEST(JsonWriter, Primitives) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(0).Dump(), "0");
  EXPECT_EQ(Json(-17).Dump(), "-17");
  EXPECT_EQ(Json(3.5).Dump(), "3.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonWriter, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(Json(5.0).Dump(), "5");
  EXPECT_EQ(Json(-2.0).Dump(), "-2");
  EXPECT_EQ(Json(int64_t{1} << 52).Dump(), "4503599627370496");
  // Outside the exact-integer range %.17g takes over.
  EXPECT_EQ(Json(1e16).Dump(), "1e+16");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).Dump(), "null");
  EXPECT_EQ(Json(INFINITY).Dump(), "null");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(Json("a\"b\\c").Dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Json("line\nbreak\ttab").Dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Json(std::string("\x01", 1)).Dump(), "\"\\u0001\"");
}

TEST(JsonWriter, Utf8PassesThrough) {
  const std::string snowman = "\xE2\x98\x83";
  EXPECT_EQ(Json(snowman).Dump(), "\"" + snowman + "\"");
}

TEST(JsonWriter, ObjectKeepsInsertionOrder) {
  Json object = Json::MakeObject();
  object.Set("z", Json(1));
  object.Set("a", Json(2));
  object.Set("z", Json(3));  // Overwrite keeps position.
  EXPECT_EQ(object.Dump(), "{\"z\":3,\"a\":2}");
}

TEST(JsonWriter, NestedStructures) {
  Json array = Json::MakeArray();
  array.Append(Json(1));
  array.Append(Json("two"));
  Json object = Json::MakeObject();
  object.Set("items", std::move(array));
  object.Set("ok", Json(true));
  EXPECT_EQ(object.Dump(), "{\"items\":[1,\"two\"],\"ok\":true}");
}

// ----- reader -----

TEST(JsonReader, ParsesPrimitives) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->bool_value(), true);
  EXPECT_EQ(Json::Parse("-3.25")->number(), -3.25);
  EXPECT_EQ(Json::Parse("\"text\"")->string_value(), "text");
  EXPECT_EQ(Json::Parse("  42  ")->number(), 42.0);
}

TEST(JsonReader, ParsesNestedDocument) {
  auto parsed = Json::Parse(
      R"({"a":[1,2,{"b":null}],"c":{"d":"e"},"f":-1.5e2})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("a")->size(), 3u);
  EXPECT_TRUE((*parsed->Find("a"))[2].Find("b")->is_null());
  EXPECT_EQ(parsed->Find("c")->Find("d")->string_value(), "e");
  EXPECT_EQ(parsed->Find("f")->number(), -150.0);
}

TEST(JsonReader, DecodesEscapes) {
  auto parsed = Json::Parse(R"("a\n\t\"\\\/\u0041")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "a\n\t\"\\/A");
}

TEST(JsonReader, DecodesSurrogatePairsToUtf8) {
  // U+1F600 GRINNING FACE as a surrogate pair.
  auto parsed = Json::Parse(R"("\uD83D\uDE00")");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string_value(), "\xF0\x9F\x98\x80");
  // BMP escape and raw UTF-8 agree.
  EXPECT_EQ(Json::Parse(R"("\u2603")")->string_value(),
            Json::Parse("\"\xE2\x98\x83\"")->string_value());
}

TEST(JsonReader, RejectsMalformedInput) {
  for (const char* bad :
       {"", "tru", "[1,", "{\"a\":}", "{a:1}", "\"unterminated", "01", "1.",
        "1e", "-", "[1]]", "{} {}", "\"\\q\"", "\"\\uD83D\"", "\"\\uDC00\"",
        "\"\x01\"", "nan", "+1"}) {
    const auto parsed = Json::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(JsonReader, RejectsOverflowingNumbers) {
  EXPECT_FALSE(Json::Parse("1e999").ok());
  EXPECT_TRUE(Json::Parse("1e308").ok());
}

TEST(JsonReader, RejectsDeepNesting) {
  std::string bomb;
  for (int i = 0; i < 200; ++i) bomb += "[";
  EXPECT_FALSE(Json::Parse(bomb).ok());
  // kMaxDepth itself is fine.
  std::string deep;
  for (int i = 0; i < 90; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 90; ++i) deep += "]";
  EXPECT_TRUE(Json::Parse(deep).ok());
}

TEST(JsonReader, RoundTripsDoublesExactly) {
  for (const double value :
       {0.1, 1.0 / 3.0, 1e-17, 123456.789012345678, 2.2250738585072014e-308}) {
    const auto parsed = Json::Parse(Json(value).Dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->number(), value) << value;
  }
}

TEST(JsonReader, DumpParseDumpIsStable) {
  const char* doc = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  auto first = Json::Parse(doc);
  ASSERT_TRUE(first.ok());
  auto second = Json::Parse(first->Dump());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->Dump(), second->Dump());
  EXPECT_TRUE(*first == *second);
}

// ----- typed field helpers -----

TEST(JsonHelpers, TypedGettersEnforceTypes) {
  auto json = Json::Parse(R"({"n":3,"s":"x","b":true})");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(*json->GetNumber("n", 0), 3.0);
  EXPECT_EQ(*json->GetString("s", ""), "x");
  EXPECT_EQ(*json->GetBool("b", false), true);
  EXPECT_EQ(*json->GetNumber("missing", 7.0), 7.0);
  EXPECT_FALSE(json->GetNumber("s", 0).ok());
  EXPECT_FALSE(json->GetBool("n", false).ok());
  EXPECT_FALSE(json->GetNumber("missing").ok());
  EXPECT_EQ(json->GetNumber("missing").status().code(), StatusCode::kNotFound);
}

// ----- wire parity with the in-process request/response structs -----

TEST(JsonWire, RequestRoundTripsThroughJson) {
  serve::MembershipRequest membership;
  membership.user = 7;
  membership.top_k = 3;
  membership.include_distribution = true;
  serve::RankCommunitiesRequest rank;
  rank.words = {1, 4, 2};
  rank.top_k = 5;
  rank.include_topic_distribution = false;
  serve::DiffusionRequest diffusion;
  diffusion.source = 1;
  diffusion.target = 2;
  diffusion.document = 9;
  diffusion.time_bin = 4;
  serve::TopUsersRequest top_users;
  top_users.community = 3;
  top_users.top_k = 12;

  for (const serve::QueryRequest& request :
       {serve::QueryRequest(membership), serve::QueryRequest(rank),
        serve::QueryRequest(diffusion), serve::QueryRequest(top_users)}) {
    const Json encoded = server::QueryRequestToJson(request);
    auto reparsed = Json::Parse(encoded.Dump());
    ASSERT_TRUE(reparsed.ok());
    auto decoded = server::QueryRequestFromJson(*reparsed, nullptr);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->index(), request.index());
    // Re-encoding the decoded request must reproduce the bytes: the wire
    // format loses nothing the engine looks at.
    EXPECT_EQ(server::QueryRequestToJson(*decoded).Dump(), encoded.Dump());
  }
}

TEST(JsonWire, ResponseEncodingMatchesInProcessStructs) {
  serve::MembershipResponse membership;
  membership.top = {{2, 0.5}, {0, 0.25}};
  membership.distribution = {0.25, 0.1, 0.5, 0.15};
  const Json encoded = server::QueryResponseToJson(
      serve::QueryResponse(membership));
  EXPECT_EQ(encoded.Dump(),
            "{\"type\":\"membership\",\"top\":[{\"community\":2,\"weight\":0.5"
            "},{\"community\":0,\"weight\":0.25}],\"distribution\":[0.25,0.1,"
            "0.5,0.15]}");

  serve::DiffusionResponse diffusion;
  diffusion.probability = 0.125;
  diffusion.friendship_score = 0.75;
  EXPECT_EQ(
      server::QueryResponseToJson(serve::QueryResponse(diffusion)).Dump(),
      "{\"type\":\"diffusion\",\"probability\":0.125,\"friendship_score\":0.75"
      "}");

  serve::TopUsersResponse top_users;
  top_users.users = {5, 1};
  top_users.weights = {0.9, 0.8};
  EXPECT_EQ(
      server::QueryResponseToJson(serve::QueryResponse(top_users)).Dump(),
      "{\"type\":\"top_users\",\"users\":[5,1],\"weights\":[0.9,0.8]}");
}

TEST(JsonWire, MalformedRequestsAreTypedErrors) {
  const Vocabulary* no_vocab = nullptr;
  for (const char* bad : {
           R"({"user":1})",                                // missing type
           R"({"type":"nope","user":1})",                  // unknown type
           R"({"type":"membership"})",                     // missing user
           R"({"type":"membership","user":1.5})",          // fractional id
           R"({"type":"membership","user":4294967299})",   // > int32: must be
                                                           // 400, never a
                                                           // truncated id
           R"({"type":"membership","user":1e300})",        // cast would be UB
           R"({"type":"rank","words":[4294967299]})",      // > int32 word id
           R"({"type":"rank"})",                           // no words/query
           R"({"type":"rank","words":[1],"query":"x"})",   // both
           R"({"type":"rank","words":"x"})",               // wrong type
           R"({"type":"diffusion","source":1})",           // missing fields
           R"({"type":"top_users"})",                      // missing community
           R"([1,2])",                                     // not an object
       }) {
    auto json = Json::Parse(bad);
    ASSERT_TRUE(json.ok()) << bad;
    const auto decoded = server::QueryRequestFromJson(*json, no_vocab);
    EXPECT_FALSE(decoded.ok()) << "accepted: " << bad;
  }
  // Textual query without a vocabulary is FailedPrecondition, not a parse
  // error (the client can fall back to ids).
  auto textual = Json::Parse(R"({"type":"rank","query":"solar"})");
  ASSERT_TRUE(textual.ok());
  const auto decoded = server::QueryRequestFromJson(*textual, no_vocab);
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(JsonWire, StatusMapping) {
  EXPECT_EQ(server::HttpStatusForCode(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(server::HttpStatusForCode(StatusCode::kNotFound), 404);
  EXPECT_EQ(server::HttpStatusForCode(StatusCode::kOutOfRange), 404);
  EXPECT_EQ(server::HttpStatusForCode(StatusCode::kFailedPrecondition), 409);
  EXPECT_EQ(server::HttpStatusForCode(StatusCode::kUnimplemented), 501);
  EXPECT_EQ(server::HttpStatusForCode(StatusCode::kInternal), 500);
  EXPECT_EQ(
      server::StatusToJson(Status::NotFound("no user")).Dump(),
      "{\"error\":{\"code\":\"NotFound\",\"message\":\"no user\"}}");
}

}  // namespace
}  // namespace cpd
