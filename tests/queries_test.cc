#include <gtest/gtest.h>

#include "synth/queries.h"
#include "test_util.h"

namespace cpd {
namespace {

TEST(QueriesTest, QueriesHaveRelevantUsers) {
  const SynthResult data = testing::MakeTinyGraph();
  Rng rng(51);
  QueryOptions options;
  options.min_frequency = 5;
  options.min_relevant_users = 2;
  const auto queries = BuildRankingQueries(data.graph, options, &rng);
  ASSERT_FALSE(queries.empty());
  for (const RankingQuery& query : queries) {
    EXPECT_NE(query.word, kInvalidWord);
    EXPECT_GE(query.num_relevant, options.min_relevant_users);
    size_t count = 0;
    for (char flag : query.relevant_users) count += flag ? 1 : 0;
    EXPECT_EQ(count, query.num_relevant);
    EXPECT_EQ(query.relevant_users.size(), data.graph.num_users());
  }
}

TEST(QueriesTest, RelevantUsersActuallyDiffuseTheWord) {
  const SynthResult data = testing::MakeTinyGraph();
  Rng rng(53);
  QueryOptions options;
  options.min_frequency = 5;
  options.min_relevant_users = 2;
  options.max_queries = 5;
  const auto queries = BuildRankingQueries(data.graph, options, &rng);
  ASSERT_FALSE(queries.empty());

  std::vector<char> is_source(data.graph.num_documents(), 0);
  for (const DiffusionLink& link : data.graph.diffusion_links()) {
    is_source[static_cast<size_t>(link.i)] = 1;
  }
  for (const RankingQuery& query : queries) {
    for (size_t u = 0; u < query.relevant_users.size(); ++u) {
      if (!query.relevant_users[u]) continue;
      bool found = false;
      for (DocId d : data.graph.DocumentsOf(static_cast<UserId>(u))) {
        if (!is_source[static_cast<size_t>(d)]) continue;
        const Document& doc = data.graph.document(d);
        if (std::find(doc.words.begin(), doc.words.end(), query.word) !=
            doc.words.end()) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "user " << u << " marked relevant without mention";
    }
  }
}

TEST(QueriesTest, MaxQueriesCapRespected) {
  const SynthResult data = testing::MakeTinyGraph();
  Rng rng(55);
  QueryOptions options;
  options.min_frequency = 2;
  options.max_queries = 3;
  options.min_relevant_users = 1;
  const auto queries = BuildRankingQueries(data.graph, options, &rng);
  EXPECT_LE(queries.size(), 3u);
}

TEST(QueriesTest, FrequencyFilterApplies) {
  const SynthResult data = testing::MakeTinyGraph();
  Rng rng(57);
  QueryOptions options;
  options.min_frequency = 1000000;  // Nothing is this frequent.
  const auto queries = BuildRankingQueries(data.graph, options, &rng);
  EXPECT_TRUE(queries.empty());
}

TEST(QueriesTest, HashtagsOnlyFilter) {
  SynthConfig config = SynthConfig::TwitterLike().Scaled(0.15);
  auto data = GenerateSocialGraph(config);
  ASSERT_TRUE(data.ok());
  Rng rng(59);
  QueryOptions options;
  options.min_frequency = 3;
  options.hashtags_only = true;
  options.min_relevant_users = 1;
  const auto queries = BuildRankingQueries(data->graph, options, &rng);
  const Vocabulary& vocab = data->graph.corpus().vocabulary();
  for (const RankingQuery& query : queries) {
    EXPECT_EQ(vocab.WordOf(query.word)[0], '#');
  }
  EXPECT_FALSE(queries.empty());
}

}  // namespace
}  // namespace cpd
