// Round-trip properties of the artifact and delta codecs, over seeded
// random models instead of one trained fixture:
//   - encode(v3) -> decode -> encode is byte-stable, for every
//     vocab/top-k/alignment combination the writer accepts;
//   - encode(v3) -> mmap -> Materialize -> encode reproduces the original
//     file bitwise (the SaveBinary -> mmap load -> SaveBinary property);
//   - legacy v1/v2 encodings round-trip byte-stable too;
//   - delta application is order-stable: applying a chain one delta at a
//     time, or as one ComposeModelDeltas merge, lands on bitwise the same
//     artifact, and composition itself is associative on the wire.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "core/model_delta.h"
#include "core/model_state.h"
#include "util/file_util.h"
#include "util/logging.h"

namespace cpd {
namespace {

double RandomValue(std::mt19937_64* rng) {
  std::uniform_real_distribution<double> dist(0.001, 1.0);
  return dist(*rng);
}

void FillRandom(std::mt19937_64* rng, std::vector<double>* values,
                size_t count) {
  values->resize(count);
  for (double& value : *values) value = RandomValue(rng);
}

/// A random but internally consistent artifact: dims drawn small, every
/// estimate positive, vocabulary (when bundled) dense and unique.
ModelArtifact MakeRandomArtifact(std::mt19937_64* rng, bool with_vocab) {
  std::uniform_int_distribution<int> c_dist(1, 6);
  std::uniform_int_distribution<int> z_dist(1, 5);
  std::uniform_int_distribution<int> t_dist(1, 4);
  std::uniform_int_distribution<int> u_dist(1, 40);
  std::uniform_int_distribution<int> w_dist(1, 30);

  ModelArtifact artifact;
  artifact.num_communities = c_dist(*rng);
  artifact.num_topics = z_dist(*rng);
  artifact.num_time_bins = t_dist(*rng);
  artifact.num_users = static_cast<uint64_t>(u_dist(*rng));
  artifact.vocab_size = static_cast<uint64_t>(w_dist(*rng));
  artifact.generation = (*rng)() % 100;

  const size_t c = static_cast<size_t>(artifact.num_communities);
  const size_t z = static_cast<size_t>(artifact.num_topics);
  const size_t t = static_cast<size_t>(artifact.num_time_bins);
  FillRandom(rng, &artifact.pi, artifact.num_users * c);
  FillRandom(rng, &artifact.theta, c * z);
  FillRandom(rng, &artifact.phi, z * artifact.vocab_size);
  FillRandom(rng, &artifact.eta, c * c * z);
  FillRandom(rng, &artifact.weights, static_cast<size_t>(kNumDiffusionWeights));
  FillRandom(rng, &artifact.popularity, t * z);

  if (with_vocab) {
    for (uint64_t w = 0; w < artifact.vocab_size; ++w) {
      artifact.vocab_words.push_back("w" + std::to_string(w));
      artifact.vocab_frequencies.push_back(
          static_cast<int64_t>((*rng)() % 1000));
    }
  }
  CPD_CHECK(artifact.Validate().ok());
  return artifact;
}

/// The next generation of `base`, the way an ingest batch would move it:
/// a random subset of pi rows retouched, zero or more users and (when a
/// vocabulary is bundled) words appended, every global estimate refreshed,
/// the whole frequency table drifted, generation bumped by one.
ModelArtifact RandomSuccessor(std::mt19937_64* rng,
                              const ModelArtifact& base) {
  std::uniform_int_distribution<int> coin(0, 3);
  ModelArtifact next = base;
  next.generation = base.generation + 1;

  const size_t c = static_cast<size_t>(base.num_communities);
  for (uint64_t u = 0; u < base.num_users; ++u) {
    if (coin(*rng) == 0) {
      for (size_t i = 0; i < c; ++i) next.pi[u * c + i] = RandomValue(rng);
    }
  }
  const int new_users = coin(*rng) % 3;
  for (int n = 0; n < new_users; ++n) {
    for (size_t i = 0; i < c; ++i) next.pi.push_back(RandomValue(rng));
    next.num_users += 1;
  }

  const int new_words = base.has_vocabulary() ? coin(*rng) % 3 : 0;
  next.vocab_size += static_cast<uint64_t>(new_words);
  for (int n = 0; n < new_words; ++n) {
    next.vocab_words.push_back("g" + std::to_string(next.generation) + "w" +
                               std::to_string(n));
    next.vocab_frequencies.push_back(static_cast<int64_t>((*rng)() % 1000));
  }
  for (int64_t& frequency : next.vocab_frequencies) ++frequency;

  const size_t z = static_cast<size_t>(base.num_topics);
  FillRandom(rng, &next.phi, z * next.vocab_size);
  FillRandom(rng, &next.theta, next.theta.size());
  FillRandom(rng, &next.eta, next.eta.size());
  FillRandom(rng, &next.weights, next.weights.size());
  FillRandom(rng, &next.popularity, next.popularity.size());
  CPD_CHECK(next.Validate().ok());
  return next;
}

std::string MustEncode(const ModelArtifact& artifact,
                       const ArtifactWriteOptions& options = {}) {
  auto encoded = EncodeModelArtifact(artifact, options);
  CPD_CHECK(encoded.ok());
  return std::move(*encoded);
}

TEST(ArtifactRoundtripTest, V3EncodeDecodeEncodeIsByteStable) {
  const uint32_t top_ks[] = {0, 3, 64};
  const uint32_t alignments[] = {8, 64, 4096};
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    std::mt19937_64 rng(seed);
    const ModelArtifact artifact = MakeRandomArtifact(&rng, seed % 2 == 0);
    for (const uint32_t top_k : top_ks) {
      for (const uint32_t alignment : alignments) {
        ArtifactWriteOptions options;
        options.derived_top_k = top_k;
        options.section_alignment = alignment;
        const std::string first = MustEncode(artifact, options);
        auto decoded = DecodeModelArtifact(first);
        ASSERT_TRUE(decoded.ok())
            << decoded.status().ToString() << " seed=" << seed
            << " top_k=" << top_k << " align=" << alignment;
        EXPECT_EQ(decoded->pi, artifact.pi);
        EXPECT_EQ(decoded->phi, artifact.phi);
        EXPECT_EQ(decoded->vocab_words, artifact.vocab_words);
        EXPECT_EQ(decoded->generation, artifact.generation);
        // Same knobs, same bytes: the derived sections are a pure function
        // of the estimates, the padding is all zero.
        EXPECT_EQ(MustEncode(*decoded, options), first)
            << "seed=" << seed << " top_k=" << top_k
            << " align=" << alignment;
      }
    }
  }
}

TEST(ArtifactRoundtripTest, MmapMaterializeReencodeReproducesTheFile) {
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    std::mt19937_64 rng(seed);
    const ModelArtifact artifact = MakeRandomArtifact(&rng, seed % 2 == 0);
    const std::string bytes = MustEncode(artifact);
    const std::string path = ::testing::TempDir() + "/roundtrip_" +
                             std::to_string(seed) + ".cpdb";
    ASSERT_TRUE(WriteStringToFile(path, bytes).ok());

    auto mapped = MappedModelArtifact::Open(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    // The zero-copy spans are the decoded vectors, bit for bit.
    EXPECT_TRUE(std::equal((*mapped)->pi().begin(), (*mapped)->pi().end(),
                           artifact.pi.begin(), artifact.pi.end()));
    EXPECT_TRUE(std::equal((*mapped)->phi().begin(), (*mapped)->phi().end(),
                           artifact.phi.begin(), artifact.phi.end()));
    EXPECT_EQ((*mapped)->generation(), artifact.generation);

    // Save -> mmap load -> save: the re-encoded file is the original file.
    const ModelArtifact materialized = (*mapped)->Materialize();
    EXPECT_EQ(MustEncode(materialized), bytes) << "seed=" << seed;
  }
}

TEST(ArtifactRoundtripTest, LegacyVersionsRoundTripByteStable) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    std::mt19937_64 rng(seed);
    ModelArtifact artifact = MakeRandomArtifact(&rng, /*with_vocab=*/true);
    for (const uint32_t version : {2u, 1u}) {
      if (version == 1) {
        // The v1 wire has no vocabulary section and the encoder refuses to
        // drop one silently.
        artifact.vocab_words.clear();
        artifact.vocab_frequencies.clear();
      }
      ArtifactWriteOptions options;
      options.version = version;
      const std::string first = MustEncode(artifact, options);
      auto decoded = DecodeModelArtifact(first);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->has_vocabulary(), version >= 2);
      EXPECT_EQ(MustEncode(*decoded, options), first)
          << "seed=" << seed << " v" << version;
    }
  }
}

TEST(ArtifactRoundtripTest, DeltaCodecRoundTripsByteStable) {
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    std::mt19937_64 rng(seed);
    const ModelArtifact base = MakeRandomArtifact(&rng, seed % 2 == 0);
    const ModelArtifact target = RandomSuccessor(&rng, base);
    auto delta = BuildModelDelta(base, target);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    auto encoded = EncodeModelDelta(*delta);
    ASSERT_TRUE(encoded.ok());
    auto decoded = DecodeModelDelta(*encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    auto re_encoded = EncodeModelDelta(*decoded);
    ASSERT_TRUE(re_encoded.ok());
    EXPECT_EQ(*re_encoded, *encoded) << "seed=" << seed;

    // Build -> apply reproduces the target on the wire.
    auto applied = ApplyModelDelta(base, *decoded);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(MustEncode(*applied), MustEncode(target)) << "seed=" << seed;
  }
}

TEST(ArtifactRoundtripTest, DeltaApplicationIsOrderStable) {
  for (uint64_t seed = 41; seed <= 46; ++seed) {
    std::mt19937_64 rng(seed);
    const ModelArtifact a = MakeRandomArtifact(&rng, seed % 2 == 0);
    const ModelArtifact b = RandomSuccessor(&rng, a);
    const ModelArtifact c = RandomSuccessor(&rng, b);
    const ModelArtifact d = RandomSuccessor(&rng, c);
    auto ab = BuildModelDelta(a, b);
    auto bc = BuildModelDelta(b, c);
    auto cd = BuildModelDelta(c, d);
    ASSERT_TRUE(ab.ok() && bc.ok() && cd.ok());

    // One delta at a time == one composed merge, bitwise.
    auto step_b = ApplyModelDelta(a, *ab);
    ASSERT_TRUE(step_b.ok());
    auto step_c = ApplyModelDelta(*step_b, *bc);
    ASSERT_TRUE(step_c.ok());
    auto composed = ComposeModelDeltas(*ab, *bc);
    ASSERT_TRUE(composed.ok()) << composed.status().ToString();
    auto jumped = ApplyModelDelta(a, *composed);
    ASSERT_TRUE(jumped.ok()) << jumped.status().ToString();
    EXPECT_EQ(MustEncode(*jumped), MustEncode(*step_c)) << "seed=" << seed;
    EXPECT_EQ(MustEncode(*jumped), MustEncode(c)) << "seed=" << seed;

    // Composition associates on the wire.
    auto left = ComposeModelDeltas(*composed, *cd);
    auto bc_cd = ComposeModelDeltas(*bc, *cd);
    ASSERT_TRUE(left.ok() && bc_cd.ok());
    auto right = ComposeModelDeltas(*ab, *bc_cd);
    ASSERT_TRUE(right.ok());
    auto left_bytes = EncodeModelDelta(*left);
    auto right_bytes = EncodeModelDelta(*right);
    ASSERT_TRUE(left_bytes.ok() && right_bytes.ok());
    EXPECT_EQ(*left_bytes, *right_bytes) << "seed=" << seed;

    // Out-of-order application refuses, it does not corrupt.
    EXPECT_EQ(ApplyModelDelta(a, *bc).status().code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(ComposeModelDeltas(*bc, *ab).status().code(),
              StatusCode::kFailedPrecondition);
  }
}

}  // namespace
}  // namespace cpd
