#include <gtest/gtest.h>

#include "util/rng.h"

#include "eval/metrics.h"
#include "test_util.h"

namespace cpd {
namespace {

TEST(AucTest, PerfectSeparation) {
  const std::vector<double> pos = {0.9, 0.8, 0.7};
  const std::vector<double> neg = {0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(ComputeAuc(pos, neg), 1.0);
  EXPECT_DOUBLE_EQ(ComputeAuc(neg, pos), 0.0);
}

TEST(AucTest, RandomScoresGiveHalf) {
  const std::vector<double> pos = {0.1, 0.5, 0.9};
  const std::vector<double> neg = {0.1, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(ComputeAuc(pos, neg), 0.5);
}

TEST(AucTest, TiesCountHalf) {
  const std::vector<double> pos = {0.5, 0.8};
  const std::vector<double> neg = {0.5, 0.2};
  // Pairs: (0.5 vs 0.5)=0.5, (0.5 vs 0.2)=1, (0.8 vs 0.5)=1, (0.8 vs 0.2)=1.
  EXPECT_DOUBLE_EQ(ComputeAuc(pos, neg), 3.5 / 4.0);
}

TEST(AucTest, EmptyInputsGiveHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({}, {}), 0.5);
}

TEST(ConductanceTest, PlantedCommunitiesBeatRandomSets) {
  const SynthResult data = testing::MakeTinyGraph();
  const SocialGraph& graph = data.graph;
  // Planted community indicator sets.
  const int kc = data.truth.num_communities;
  double planted_total = 0.0;
  for (int c = 0; c < kc; ++c) {
    std::vector<char> in_set(graph.num_users(), 0);
    for (size_t u = 0; u < graph.num_users(); ++u) {
      in_set[u] = data.truth.user_community[u] == c ? 1 : 0;
    }
    planted_total += SetConductance(graph, in_set);
  }
  // Random sets of the same sizes.
  Rng rng(15);
  double random_total = 0.0;
  for (int c = 0; c < kc; ++c) {
    std::vector<char> in_set(graph.num_users(), 0);
    for (size_t u = 0; u < graph.num_users(); ++u) {
      in_set[u] = rng.NextBernoulli(1.0 / kc) ? 1 : 0;
    }
    random_total += SetConductance(graph, in_set);
  }
  EXPECT_LT(planted_total / kc, random_total / kc);
}

TEST(ConductanceTest, FullSetHasUnitConductance) {
  const SocialGraph graph = testing::MakeHandGraph();
  std::vector<char> all(graph.num_users(), 1);
  EXPECT_DOUBLE_EQ(SetConductance(graph, all), 1.0);  // Zero outside volume.
}

TEST(ConductanceTest, CliqueHasLowConductance) {
  const SocialGraph graph = testing::MakeHandGraph();
  // Undirected neighbor sets: 0-1, 1-2, 2-3. {0, 1} has one outgoing edge
  // (1-2), vol({0,1}) = 1 + 2 = 3 = vol({2,3}).
  std::vector<char> in_set = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(SetConductance(graph, in_set), 1.0 / 3.0);
}

TEST(AverageConductanceTest, UsesTopKMembership) {
  const SocialGraph graph = testing::MakeHandGraph();
  // Two "communities": membership puts users 0,1 in c0 and 2,3 in c1.
  std::vector<std::vector<double>> memberships = {
      {0.9, 0.1}, {0.8, 0.2}, {0.1, 0.9}, {0.2, 0.8}};
  const double top1 = AverageConductance(graph, memberships, /*top_k=*/1);
  // With top-1 assignment the two cliques have conductance 1/3 each.
  EXPECT_NEAR(top1, 1.0 / 3.0, 1e-9);
  // With top-2 every user is in both communities -> conductance 1.
  EXPECT_DOUBLE_EQ(AverageConductance(graph, memberships, /*top_k=*/2), 1.0);
}

TEST(RankingTest, PrecisionRecallF1) {
  // Communities: c0 = {0,1}, c1 = {2,3}; relevant = {0,1,2}.
  const std::vector<std::vector<UserId>> community_users = {{0, 1}, {2, 3}};
  const std::vector<char> relevant = {1, 1, 1, 0};
  const std::vector<int> ranked = {0, 1};
  const auto points = EvaluateRanking(ranked, community_users, relevant, 2);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].precision, 1.0);       // {0,1} all relevant.
  EXPECT_DOUBLE_EQ(points[0].recall, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(points[1].precision, 3.0 / 4.0);  // {0,1,2,3}, 3 relevant.
  EXPECT_DOUBLE_EQ(points[1].recall, 1.0);
  EXPECT_NEAR(points[1].f1, 2.0 * 0.75 * 1.0 / 1.75, 1e-12);
}

TEST(RankingTest, AggregateOverQueries) {
  std::vector<std::vector<RankingPoint>> per_query(2);
  per_query[0] = {{1.0, 0.5, 2.0 / 3.0}, {0.5, 1.0, 2.0 / 3.0}};
  per_query[1] = {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.5}};
  const auto metrics = AggregateRankings(per_query, 2);
  // MAP@1 = mean(1.0, 0.0) = 0.5.
  EXPECT_DOUBLE_EQ(metrics.map_at_k[0], 0.5);
  // MAP@2 = mean((1.0+0.5)/2, (0+0.5)/2) = mean(0.75, 0.25) = 0.5.
  EXPECT_DOUBLE_EQ(metrics.map_at_k[1], 0.5);
  EXPECT_GT(metrics.maf_at_k[1], 0.0);
}

TEST(PerplexityTest, PlantedProfilesBeatUniform) {
  const SynthResult data = testing::MakeTinyGraph();
  const SocialGraph& graph = data.graph;
  std::vector<DocId> docs;
  for (size_t d = 0; d < graph.num_documents(); d += 3) {
    docs.push_back(static_cast<DocId>(d));
  }
  const double planted = ContentPerplexity(graph, docs, data.truth.pi,
                                           data.truth.theta, data.truth.phi);
  // Uniform profiles.
  const size_t v = graph.vocabulary_size();
  std::vector<std::vector<double>> uniform_phi(
      static_cast<size_t>(data.truth.num_topics),
      std::vector<double>(v, 1.0 / static_cast<double>(v)));
  const double uniform = ContentPerplexity(graph, docs, data.truth.pi,
                                           data.truth.theta, uniform_phi);
  EXPECT_LT(planted, uniform);
  EXPECT_NEAR(uniform, static_cast<double>(v), 1.0);
}

TEST(NmiTest, IdenticalPartitionsGiveOne) {
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(labels, labels), 1.0, 1e-12);
}

TEST(NmiTest, PermutedLabelsStillOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int> b = {5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsNearZero) {
  std::vector<int> a, b;
  Rng rng(33);
  for (int i = 0; i < 2000; ++i) {
    a.push_back(static_cast<int>(rng.NextUint64(4)));
    b.push_back(static_cast<int>(rng.NextUint64(4)));
  }
  EXPECT_LT(NormalizedMutualInformation(a, b), 0.02);
}

TEST(NmiTest, SingleClusterEdgeCase) {
  const std::vector<int> ones(10, 1);
  const std::vector<int> mixed = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(ones, ones), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(ones, mixed), 0.0);
}

}  // namespace
}  // namespace cpd
