#include <gtest/gtest.h>

#include <cmath>

#include "baselines/aggregation.h"
#include "baselines/cold.h"
#include "baselines/crm.h"
#include "baselines/pmtlm.h"
#include "baselines/wtm.h"
#include "eval/evaluator.h"
#include "test_util.h"

namespace cpd {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph(71));
  }
  static void TearDownTestSuite() { delete data_; }
  static SynthResult* data_;
};

SynthResult* BaselinesTest::data_ = nullptr;

TEST_F(BaselinesTest, PmtlmTrainsAndScores) {
  PmtlmConfig config;
  config.num_topics = 6;
  config.lda_iterations = 20;
  auto model = PmtlmModel::Train(data_->graph, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Memberships().size(), data_->graph.num_users());
  for (double b : model->beta()) EXPECT_GE(b, 0.0);
  // Linked documents should have a higher Poisson rate than random pairs on
  // average (the topics correlate along links).
  const auto& links = data_->graph.diffusion_links();
  double linked = 0.0, random = 0.0;
  Rng rng(73);
  for (size_t e = 0; e < std::min<size_t>(50, links.size()); ++e) {
    linked += model->LinkRate(links[e].i, links[e].j);
    random += model->LinkRate(
        static_cast<DocId>(rng.NextUint64(data_->graph.num_documents())),
        static_cast<DocId>(rng.NextUint64(data_->graph.num_documents())));
  }
  EXPECT_GT(linked, random);
}

TEST_F(BaselinesTest, PmtlmBeatsRandomOnDiffusionAuc) {
  PmtlmConfig config;
  config.num_topics = 6;
  config.lda_iterations = 20;
  auto model = PmtlmModel::Train(data_->graph, config);
  ASSERT_TRUE(model.ok());
  Rng rng(75);
  const double auc =
      EvaluateDiffusionAuc(data_->graph, data_->graph.diffusion_links(),
                           model->AsDiffusionScorer(), &rng);
  EXPECT_GT(auc, 0.55);
}

TEST_F(BaselinesTest, WtmLearnsInformativeWeights) {
  WtmConfig config;
  config.num_topics = 6;
  config.lda_iterations = 20;
  auto model = WtmModel::Train(data_->graph, config);
  ASSERT_TRUE(model.ok());
  ASSERT_FALSE(model->weights().empty());
  Rng rng(77);
  const double auc =
      EvaluateDiffusionAuc(data_->graph, data_->graph.diffusion_links(),
                           model->AsDiffusionScorer(), &rng);
  EXPECT_GT(auc, 0.55);  // Trained on these links; must beat chance.
}

TEST_F(BaselinesTest, CrmMembershipsAreDistributions) {
  CrmConfig config;
  config.num_communities = 4;
  config.iterations = 30;
  auto model = CrmModel::Train(data_->graph, config);
  ASSERT_TRUE(model.ok());
  for (const auto& psi : model->Memberships()) {
    double total = 0.0;
    for (double p : psi) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST_F(BaselinesTest, CrmFriendshipAucBeatsRandom) {
  CrmConfig config;
  config.num_communities = 4;
  config.iterations = 30;
  auto model = CrmModel::Train(data_->graph, config);
  ASSERT_TRUE(model.ok());
  Rng rng(79);
  const double auc =
      EvaluateFriendshipAuc(data_->graph, data_->graph.friendship_links(),
                            model->AsFriendshipScorer(), &rng);
  EXPECT_GT(auc, 0.6);
}

TEST_F(BaselinesTest, ColdIsConstrainedCpd) {
  ColdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 4;
  const CpdConfig cpd_config = MakeColdCpdConfig(config);
  EXPECT_FALSE(cpd_config.ablation.model_friendship);
  EXPECT_FALSE(cpd_config.ablation.individual_factor);
  EXPECT_FALSE(cpd_config.ablation.topic_factor);
  EXPECT_TRUE(cpd_config.ablation.heterogeneous_links);

  auto model = ColdModel::Train(data_->graph, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Memberships().size(), data_->graph.num_users());
  // Individual/popularity weights stay pinned.
  EXPECT_DOUBLE_EQ(model->model().DiffusionWeights()[kWeightPopularity], 0.0);
  for (int k = 0; k < kNumUserFeatures; ++k) {
    EXPECT_DOUBLE_EQ(model->model().DiffusionWeights()[kWeightFeature0 + k], 0.0);
  }
}

TEST_F(BaselinesTest, AggregationProfilesWellFormed) {
  CrmConfig crm_config;
  crm_config.num_communities = 4;
  crm_config.iterations = 20;
  auto crm = CrmModel::Train(data_->graph, crm_config);
  ASSERT_TRUE(crm.ok());

  AggregationConfig agg_config;
  agg_config.num_topics = 6;
  agg_config.lda_iterations = 20;
  auto profiles =
      AggregatedProfiles::Build(data_->graph, crm->Memberships(), agg_config);
  ASSERT_TRUE(profiles.ok());
  EXPECT_EQ(profiles->num_communities(), 4);
  for (const auto& theta : profiles->content_profiles()) {
    double total = 0.0;
    for (double p : theta) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Eta rows normalized.
  for (int c = 0; c < 4; ++c) {
    double total = 0.0;
    for (int c2 = 0; c2 < 4; ++c2) {
      for (int z = 0; z < 6; ++z) total += profiles->Eta(c, c2, z);
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST_F(BaselinesTest, AggregationRankingAndScoring) {
  CrmConfig crm_config;
  crm_config.num_communities = 4;
  crm_config.iterations = 20;
  auto crm = CrmModel::Train(data_->graph, crm_config);
  ASSERT_TRUE(crm.ok());
  AggregationConfig agg_config;
  agg_config.num_topics = 6;
  agg_config.lda_iterations = 20;
  auto profiles =
      AggregatedProfiles::Build(data_->graph, crm->Memberships(), agg_config);
  ASSERT_TRUE(profiles.ok());

  // Ranking covers all communities exactly once.
  const WordId some_word = 0;
  const std::vector<WordId> query = {some_word};
  const auto ranked = profiles->RankCommunities(query);
  ASSERT_EQ(ranked.size(), 4u);
  std::vector<bool> seen(4, false);
  for (int c : ranked) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 4);
    EXPECT_FALSE(seen[static_cast<size_t>(c)]);
    seen[static_cast<size_t>(c)] = true;
  }

  // Scorer produces finite non-negative scores.
  const auto scorer = profiles->AsDiffusionScorer(data_->graph);
  const DiffusionLink& link = data_->graph.diffusion_links()[0];
  const double score = scorer(link.i, link.j, link.time);
  EXPECT_GE(score, 0.0);
  EXPECT_TRUE(std::isfinite(score));

  const auto sets = profiles->CommunityUserSets(2);
  size_t total_members = 0;
  for (const auto& users : sets) total_members += users.size();
  EXPECT_EQ(total_members, data_->graph.num_users() * 2);
}

TEST_F(BaselinesTest, AggregationRejectsBadInput) {
  AggregationConfig config;
  std::vector<std::vector<double>> wrong_size(3, std::vector<double>(4, 0.25));
  EXPECT_FALSE(AggregatedProfiles::Build(data_->graph, wrong_size, config).ok());
}

}  // namespace
}  // namespace cpd
