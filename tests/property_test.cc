#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/em_trainer.h"
#include "test_util.h"

namespace cpd {
namespace {

// Property sweep: across community/topic-count combinations and ablation
// variants, training must terminate with normalized estimates, consistent
// counters and finite parameters. This guards every configuration the
// benchmarks exercise.
struct VariantSpec {
  const char* name;
  bool joint;
  bool heterogeneous;
  bool individual;
  bool topic;
  bool friendship;
};

class CpdPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, VariantSpec>> {};

TEST_P(CpdPropertyTest, TrainingPreservesInvariants) {
  const auto [kc, kz, variant] = GetParam();
  const SynthResult data = testing::MakeTinyGraph(301);

  CpdConfig config;
  config.num_communities = kc;
  config.num_topics = kz;
  config.em_iterations = 3;
  config.gibbs_sweeps_per_em = 1;
  config.nu_iterations = 10;
  config.seed = 303;
  config.ablation.joint_profiling = variant.joint;
  config.ablation.heterogeneous_links = variant.heterogeneous;
  config.ablation.individual_factor = variant.individual;
  config.ablation.topic_factor = variant.topic;
  config.ablation.model_friendship = variant.friendship;

  EmTrainer trainer(data.graph, config);
  ASSERT_TRUE(trainer.Train().ok()) << variant.name;
  const ModelState& state = trainer.state();

  // Counter consistency.
  ModelState fresh(data.graph, config);
  fresh.doc_topic = state.doc_topic;
  fresh.doc_community = state.doc_community;
  fresh.RebuildCounts(data.graph);
  EXPECT_EQ(fresh.n_uc, state.n_uc) << variant.name;
  EXPECT_EQ(fresh.n_cz, state.n_cz) << variant.name;
  EXPECT_EQ(fresh.n_zw, state.n_zw) << variant.name;

  // Estimates normalized.
  for (size_t u = 0; u < state.num_users; u += 9) {
    double total = 0.0;
    for (int c = 0; c < kc; ++c) total += state.PiHat(static_cast<UserId>(u), c);
    EXPECT_NEAR(total, 1.0, 1e-9) << variant.name;
  }
  for (int c = 0; c < kc; ++c) {
    double total = 0.0;
    for (int z = 0; z < kz; ++z) total += state.ThetaHat(c, z);
    EXPECT_NEAR(total, 1.0, 1e-9) << variant.name;
  }

  // Parameters finite; ablated weights pinned.
  for (double w : state.weights) EXPECT_TRUE(std::isfinite(w)) << variant.name;
  if (!variant.topic) {
    EXPECT_DOUBLE_EQ(state.weights[kWeightPopularity], 0.0) << variant.name;
  }
  if (!variant.individual) {
    for (int k = 0; k < kNumUserFeatures; ++k) {
      EXPECT_DOUBLE_EQ(state.weights[kWeightFeature0 + k], 0.0) << variant.name;
    }
  }
  for (double value : state.eta) {
    EXPECT_GE(value, 0.0);
    EXPECT_TRUE(std::isfinite(value));
  }
}

constexpr VariantSpec kVariants[] = {
    {"full", true, true, true, true, true},
    {"no_joint", false, true, true, true, true},
    {"no_heterogeneity", true, false, true, true, true},
    {"no_individual_topic", true, true, false, false, true},
    {"no_topic", true, true, true, false, true},
    {"cold_style", true, true, false, false, false},
};

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, CpdPropertyTest,
    ::testing::Combine(::testing::Values(2, 4, 7), ::testing::Values(3, 6),
                       ::testing::ValuesIn(kVariants)),
    [](const ::testing::TestParamInfo<CpdPropertyTest::ParamType>& info) {
      return "C" + std::to_string(std::get<0>(info.param)) + "_Z" +
             std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param).name;
    });

}  // namespace
}  // namespace cpd
