#include <gtest/gtest.h>

#include "eval/cross_validation.h"
#include "test_util.h"

namespace cpd {
namespace {

TEST(CrossValidationTest, FoldsCoverAllLinks) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  Rng rng(41);
  const LinkFolds folds = AssignLinkFolds(graph, 10, &rng);
  EXPECT_EQ(folds.friendship_fold.size(), graph.num_friendship_links());
  EXPECT_EQ(folds.diffusion_fold.size(), graph.num_diffusion_links());
  for (int f : folds.friendship_fold) {
    EXPECT_GE(f, 0);
    EXPECT_LT(f, 10);
  }
}

TEST(CrossValidationTest, FoldSizesRoughlyEqual) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  Rng rng(43);
  const LinkFolds folds = AssignLinkFolds(graph, 5, &rng);
  std::vector<int> counts(5, 0);
  for (int f : folds.friendship_fold) ++counts[static_cast<size_t>(f)];
  const double expected =
      static_cast<double>(graph.num_friendship_links()) / 5.0;
  for (int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.5 + 5.0);
  }
}

TEST(CrossValidationTest, BuildFoldSplitsLinks) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  Rng rng(45);
  const LinkFolds folds = AssignLinkFolds(graph, 10, &rng);
  auto fold = BuildFold(graph, folds, 0);
  ASSERT_TRUE(fold.ok()) << fold.status().ToString();
  EXPECT_EQ(fold->train_graph.num_friendship_links() +
                fold->heldout_friendship.size(),
            graph.num_friendship_links());
  EXPECT_EQ(fold->train_graph.num_diffusion_links() +
                fold->heldout_diffusion.size(),
            graph.num_diffusion_links());
  // Documents/users/vocabulary preserved.
  EXPECT_EQ(fold->train_graph.num_documents(), graph.num_documents());
  EXPECT_EQ(fold->train_graph.num_users(), graph.num_users());
  EXPECT_EQ(fold->train_graph.vocabulary_size(), graph.vocabulary_size());
}

TEST(CrossValidationTest, HeldOutLinksAbsentFromTrainGraph) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  Rng rng(47);
  const LinkFolds folds = AssignLinkFolds(graph, 4, &rng);
  auto fold = BuildFold(graph, folds, 2);
  ASSERT_TRUE(fold.ok());
  for (const FriendshipLink& link : fold->heldout_friendship) {
    EXPECT_FALSE(fold->train_graph.HasFriendship(link.u, link.v));
    EXPECT_TRUE(graph.HasFriendship(link.u, link.v));
  }
  for (const DiffusionLink& link : fold->heldout_diffusion) {
    EXPECT_FALSE(fold->train_graph.HasDiffusion(link.i, link.j));
    EXPECT_TRUE(graph.HasDiffusion(link.i, link.j));
  }
}

TEST(CrossValidationTest, DocumentsIdenticalAcrossFolds) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  Rng rng(49);
  const LinkFolds folds = AssignLinkFolds(graph, 3, &rng);
  auto fold = BuildFold(graph, folds, 1);
  ASSERT_TRUE(fold.ok());
  for (size_t d = 0; d < graph.num_documents(); d += 11) {
    const Document& original = graph.document(static_cast<DocId>(d));
    const Document& rebuilt = fold->train_graph.document(static_cast<DocId>(d));
    EXPECT_EQ(original.user, rebuilt.user);
    EXPECT_EQ(original.time, rebuilt.time);
    EXPECT_EQ(original.words, rebuilt.words);
  }
}

}  // namespace
}  // namespace cpd
