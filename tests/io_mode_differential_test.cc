// Differential suite over the two I/O backends: the same request trace
// driven through --io_mode blocking and --io_mode epoll must produce
// byte-identical responses (bodies, statuses, and raw framing-error
// replies), with and without request coalescing. Also pins the epoll-mode
// behavior of the admission/deadline/drain machinery that the blocking
// suite covers in http_server_test.cc.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cpd_model.h"
#include "obs/clock.h"
#include "server/coalescer.h"
#include "server/http_server.h"
#include "server/json_api.h"
#include "server/model_registry.h"
#include "test_util.h"
#include "util/json.h"

namespace cpd {
namespace {

using server::Coalescer;
using server::CoalescerOptions;
using server::HttpClient;
using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::HttpServerOptions;
using server::IoMode;

constexpr const char* kHost = "127.0.0.1";

class IoModeDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph(211));
    CpdConfig config;
    config.num_communities = 4;
    config.num_topics = 6;
    config.em_iterations = 4;
    config.seed = 29;
    auto model = CpdModel::Train(data_->graph, config);
    CPD_CHECK(model.ok());
    model_ = new CpdModel(std::move(*model));
    artifact_ = new std::string(::testing::TempDir() + "/io_mode_diff.cpdb");
    CPD_CHECK(model_
                  ->SaveBinary(*artifact_,
                               &data_->graph.corpus().vocabulary())
                  .ok());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    delete artifact_;
    model_ = nullptr;
    data_ = nullptr;
    artifact_ = nullptr;
  }

  /// Non-owning alias of the suite-cached graph (it outlives every test).
  static std::shared_ptr<const SocialGraph> SharedGraph() {
    return {&data_->graph, [](const SocialGraph*) {}};
  }

  struct Exchange {
    std::string method;
    std::string target;
    std::string body;
  };

  /// The canonical trace: all four query types, a batch with per-slot
  /// errors, the GET shortcuts, and every keep-alive-safe error path.
  static std::vector<Exchange> CanonicalTrace() {
    return {
        {"POST", "/v1/query",
         R"({"type":"membership","user":3,"top_k":3,"include_distribution":true})"},
        {"POST", "/v1/query", R"({"type":"rank","words":[1,2],"top_k":3})"},
        {"POST", "/v1/query",
         R"({"type":"diffusion","source":0,"target":1,"document":1,"time_bin":2})"},
        {"POST", "/v1/query", R"({"type":"top_users","community":1,"top_k":5})"},
        {"POST", "/v1/query",
         R"({"batch":[{"type":"membership","user":0},)"
         R"({"type":"membership","user":999999},)"
         R"({"type":"top_users","community":0,"top_k":2}]})"},
        {"GET", "/v1/membership/3?k=3&distribution=1", ""},
        {"GET", "/v1/models", ""},
        {"POST", "/v1/models/default/query",
         R"({"type":"membership","user":2,"top_k":4})"},
        {"GET", "/v1/models/default/membership/2?k=4", ""},
        {"GET", "/healthz", ""},
        // Typed error paths (connection stays alive; framing errors are
        // exercised separately over raw sockets).
        {"POST", "/v1/query", "this is not json"},
        {"POST", "/v1/query", R"({"type":"bogus"})"},
        {"POST", "/v1/query", R"({"user":3})"},
        {"POST", "/v1/query", R"({"type":"membership","user":999999})"},
        {"POST", "/v1/query", R"({"type":"membership","user":4294967299})"},
        {"GET", "/no/such/endpoint", ""},
        {"GET", "/v1/membership/notanumber", ""},
        {"POST", "/v1/models/ghost/query", R"({"type":"membership","user":0})"},
        {"GET", "/v1/models/ghost/membership/0", ""},
        {"POST", "/admin/ingest", "{}"},
        {"POST", "/admin/reload", R"({"model":""})"},
        // Last: the counters above are now identical in both modes, and the
        // obs clock is frozen (every recorded duration is exactly 0), so
        // both scrape views must match byte-for-byte too.
        {"GET", "/metricsz", ""},
        {"GET", "/statsz", ""},
    };
  }

  /// Runs the trace through a fresh server in `mode`; returns
  /// "status\nbody" per exchange, over one keep-alive connection.
  static std::vector<std::string> RunTrace(IoMode mode,
                                           const std::vector<Exchange>& trace,
                                           int coalesce_window_us = 0) {
    server::ModelRegistry registry(serve::ProfileIndexOptions{},
                                   SharedGraph());
    registry.SetClock([] { return int64_t{1754500000000}; });
    // Freeze the obs clock too: every latency/stage duration records as
    // exactly 0, making /statsz and /metricsz byte-deterministic.
    obs::SetClockForTest([]() -> int64_t { return 1754500000000; });
    CPD_CHECK(registry.LoadFrom(*artifact_).ok());
    HttpServerOptions options;
    options.port = 0;
    options.threads = 8;
    options.io_mode = mode;
    options.log_requests = false;
    HttpServer http_server(options);
    server::ServiceStats stats;
    CoalescerOptions coalescer_options;
    coalescer_options.window_us = coalesce_window_us;
    Coalescer coalescer(coalescer_options);
    server::RegisterCpdRoutes(&http_server, &registry, &stats, nullptr,
                              &coalescer);
    CPD_CHECK(http_server.Start().ok());

    std::vector<std::string> results;
    auto client = HttpClient::Connect(kHost, http_server.port());
    CPD_CHECK(client.ok());
    for (const Exchange& exchange : trace) {
      auto response =
          client->RoundTrip(exchange.method, exchange.target, exchange.body);
      CPD_CHECK(response.ok());
      results.push_back(std::to_string(response->status) + "\n" +
                        response->body);
    }
    http_server.Stop();
    obs::SetClockForTest(nullptr);
    return results;
  }

  /// Sends raw bytes over a fresh socket and reads to EOF (framing errors
  /// always close, so the full reply — status line, headers, body — comes
  /// back verbatim).
  static std::string RawRoundTrip(int port, const std::string& bytes) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    CPD_CHECK(fd >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    CPD_CHECK(::inet_pton(AF_INET, kHost, &addr.sin_addr) == 1);
    CPD_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
    // MSG_NOSIGNAL + tolerated short writes: the server may answer and
    // close before consuming the whole probe.
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      response.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    return response;
  }

  static SynthResult* data_;
  static CpdModel* model_;
  static std::string* artifact_;
};

SynthResult* IoModeDifferentialTest::data_ = nullptr;
CpdModel* IoModeDifferentialTest::model_ = nullptr;
std::string* IoModeDifferentialTest::artifact_ = nullptr;

TEST_F(IoModeDifferentialTest, CanonicalTraceIsByteIdenticalAcrossIoModes) {
  // No latency scrubbing: the frozen obs clock makes every histogram
  // deterministic, so /statsz and /metricsz compare raw.
  const std::vector<Exchange> trace = CanonicalTrace();
  const std::vector<std::string> blocking =
      RunTrace(IoMode::kBlocking, trace);
  const std::vector<std::string> epoll = RunTrace(IoMode::kEpoll, trace);
  ASSERT_EQ(blocking.size(), epoll.size());
  for (size_t i = 0; i < blocking.size(); ++i) {
    EXPECT_EQ(blocking[i], epoll[i])
        << trace[i].method << " " << trace[i].target << " " << trace[i].body;
  }
}

TEST_F(IoModeDifferentialTest, CoalescedResponsesMatchTheDirectPath) {
  // A sequential client never fills a batch window with company, so every
  // coalesced response is a flush-timeout singleton — and must still be
  // byte-identical to the uncoalesced engine path (leader runs the same
  // QueryBatch slots that Query() runs).
  const std::vector<Exchange> trace = CanonicalTrace();
  const std::vector<std::string> direct = RunTrace(IoMode::kEpoll, trace);
  const std::vector<std::string> coalesced =
      RunTrace(IoMode::kEpoll, trace, /*coalesce_window_us=*/500);
  ASSERT_EQ(direct.size(), coalesced.size());
  // The scrape views (last two exchanges) legitimately differ: they report
  // the coalescer's own counters. Everything the client asked for must not.
  for (size_t i = 0; i + 2 < direct.size(); ++i) {
    EXPECT_EQ(direct[i], coalesced[i])
        << trace[i].method << " " << trace[i].target;
  }
}

TEST_F(IoModeDifferentialTest, ConcurrentCoalescedQueriesAreByteIdentical) {
  server::ModelRegistry registry(serve::ProfileIndexOptions{}, SharedGraph());
  CPD_CHECK(registry.LoadFrom(*artifact_).ok());
  HttpServerOptions options;
  options.port = 0;
  options.threads = 12;
  options.io_mode = IoMode::kEpoll;
  options.log_requests = false;
  HttpServer http_server(options);
  server::ServiceStats stats;
  CoalescerOptions coalescer_options;
  coalescer_options.window_us = 2000;  // Wide window: force real batches.
  coalescer_options.max_batch = 8;
  Coalescer coalescer(coalescer_options);
  server::RegisterCpdRoutes(&http_server, &registry, &stats, nullptr,
                            &coalescer);
  ASSERT_TRUE(http_server.Start().ok());
  const int port = http_server.port();

  // Expected bytes per user, from the uncoalesced in-process engine.
  const auto snapshot = registry.Snapshot();
  std::vector<std::string> expected;
  for (int user = 0; user < 8; ++user) {
    serve::MembershipRequest request;
    request.user = user;
    request.top_k = 3;
    auto response = snapshot->engine->Query(serve::QueryRequest(request));
    CPD_CHECK(response.ok());
    expected.push_back(server::QueryResponseToJson(*response).Dump());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      auto client = HttpClient::Connect(kHost, port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string body =
          R"({"type":"membership","user":)" + std::to_string(t) +
          R"(,"top_k":3})";
      for (int i = 0; i < 40; ++i) {
        auto response = client->RoundTrip("POST", "/v1/query", body);
        if (!response.ok() || response->status != 200 ||
            response->body != expected[static_cast<size_t>(t)]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const server::CoalescerStats batching = coalescer.stats();
  EXPECT_EQ(batching.requests, 320u);
  EXPECT_GT(batching.batches, 0u);
  EXPECT_GT(batching.coalesced, 0u);  // 8 writers in a 2ms window do meet.
  http_server.Stop();
}

TEST_F(IoModeDifferentialTest, FramingErrorRepliesAreByteIdentical) {
  const std::vector<std::string> probes = {
      "THIS IS NOT HTTP\r\n\r\n",
      "GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: nope\r\n\r\n",
      // Declared body over the cap: 413 from the head alone.
      "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999\r\n\r\n",
      // Head over the cap: 431 (the filler header crosses max_head_bytes;
      // small enough that one server read consumes the whole probe, so the
      // close is a clean FIN and never an RST racing the reply).
      "GET /healthz HTTP/1.1\r\nX-Filler: " + std::string(1500, 'a') +
          "\r\n\r\n",
  };
  std::vector<std::vector<std::string>> replies;
  for (const auto io_mode : {IoMode::kBlocking, IoMode::kEpoll}) {
    HttpServerOptions options;
    options.port = 0;
    options.threads = 4;
    options.io_mode = io_mode;
    options.max_head_bytes = 1024;
    options.log_requests = false;
    HttpServer http_server(options);
    server::ModelRegistry registry(serve::ProfileIndexOptions{}, nullptr);
    CPD_CHECK(registry.LoadFrom(*artifact_).ok());
    server::ServiceStats stats;
    server::RegisterCpdRoutes(&http_server, &registry, &stats);
    ASSERT_TRUE(http_server.Start().ok());
    std::vector<std::string> mode_replies;
    for (const std::string& probe : probes) {
      mode_replies.push_back(RawRoundTrip(http_server.port(), probe));
    }
    replies.push_back(std::move(mode_replies));
    http_server.Stop();
  }
  ASSERT_EQ(replies.size(), 2u);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_FALSE(replies[0][i].empty()) << "probe " << i;
    EXPECT_EQ(replies[0][i], replies[1][i]) << "probe " << i;
  }
}

// ----- epoll-mode admission, deadlines, drain -----

TEST_F(IoModeDifferentialTest, EpollOverloadGets429WithRetryAfter) {
  HttpServerOptions options;
  options.port = 0;
  options.threads = 4;
  options.io_mode = IoMode::kEpoll;
  options.max_inflight = 1;
  options.log_requests = false;
  HttpServer http_server(options);
  std::mutex mutex;
  std::condition_variable cv;
  bool handler_entered = false;
  bool release_handler = false;
  http_server.Handle("GET", "/block", [&](const HttpRequest&) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      handler_entered = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release_handler; });
    HttpResponse response;
    response.body = "{\"blocked\":false}";
    return response;
  });
  ASSERT_TRUE(http_server.Start().ok());

  std::thread blocker([&] {
    auto client = HttpClient::Connect(kHost, http_server.port());
    ASSERT_TRUE(client.ok());
    auto response = client->RoundTrip("GET", "/block");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return handler_entered; });
  }

  auto prober = HttpClient::Connect(kHost, http_server.port());
  ASSERT_TRUE(prober.ok());
  auto rejected = prober->RoundTrip("GET", "/block");
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 429);
  EXPECT_EQ(rejected->headers.at("retry-after"), "1");
  EXPECT_NE(rejected->body.find("\"ResourceExhausted\""), std::string::npos);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release_handler = true;
  }
  cv.notify_all();
  blocker.join();
  // The shed connection stays usable (epoll sheds the request, not the
  // connection) and serves normally once the slot frees up.
  auto after = prober->RoundTrip("GET", "/block");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200);
  EXPECT_GE(http_server.stats().rejected_429, 1u);
  http_server.Stop();
}

TEST_F(IoModeDifferentialTest, EpollConnectionFloodShedsAtTheAcceptEdge) {
  HttpServerOptions options;
  options.port = 0;
  options.threads = 4;
  options.io_mode = IoMode::kEpoll;
  options.max_connections = 2;
  options.log_requests = false;
  HttpServer http_server(options);
  http_server.Handle("GET", "/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "{}";
    return response;
  });
  ASSERT_TRUE(http_server.Start().ok());

  auto first = HttpClient::Connect(kHost, http_server.port());
  auto second = HttpClient::Connect(kHost, http_server.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->RoundTrip("GET", "/ping")->status, 200);
  ASSERT_EQ(second->RoundTrip("GET", "/ping")->status, 200);

  auto third = HttpClient::Connect(kHost, http_server.port());
  ASSERT_TRUE(third.ok());
  auto shed = third->RoundTrip("GET", "/ping");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 429);
  EXPECT_FALSE(third->connected());  // 429-and-close at the accept edge.
  EXPECT_GE(http_server.stats().connections_rejected, 1u);
  http_server.Stop();
}

TEST_F(IoModeDifferentialTest, EpollSlowHandlerGets504) {
  HttpServerOptions options;
  options.port = 0;
  options.threads = 4;
  options.io_mode = IoMode::kEpoll;
  options.deadline_ms = 40;
  options.log_requests = false;
  HttpServer http_server(options);
  http_server.Handle("GET", "/slow", [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    HttpResponse response;
    response.body = "{\"late\":true}";
    return response;
  });
  ASSERT_TRUE(http_server.Start().ok());
  auto client = HttpClient::Connect(kHost, http_server.port());
  ASSERT_TRUE(client.ok());
  auto slow = client->RoundTrip("GET", "/slow");
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->status, 504);
  EXPECT_NE(slow->body.find("DeadlineExceeded"), std::string::npos);
  EXPECT_EQ(http_server.stats().deadline_504, 1u);
  http_server.Stop();
}

TEST_F(IoModeDifferentialTest, EpollStopDrainsInFlightRequests) {
  HttpServerOptions options;
  options.port = 0;
  options.threads = 4;
  options.io_mode = IoMode::kEpoll;
  options.log_requests = false;
  HttpServer http_server(options);
  std::atomic<bool> handler_entered{false};
  http_server.Handle("GET", "/slow", [&](const HttpRequest&) {
    handler_entered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    HttpResponse response;
    response.body = "{\"drained\":true}";
    return response;
  });
  ASSERT_TRUE(http_server.Start().ok());
  const int port = http_server.port();

  std::thread in_flight([&] {
    auto client = HttpClient::Connect(kHost, port);
    ASSERT_TRUE(client.ok());
    auto response = client->RoundTrip("GET", "/slow");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    // The in-flight request finishes with its real response; the server
    // closes the (draining) connection after writing it.
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, "{\"drained\":true}");
  });
  while (!handler_entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  http_server.Stop();  // Must block until the in-flight response is written.
  in_flight.join();
  EXPECT_FALSE(http_server.running());
  EXPECT_FALSE(HttpClient::Connect(kHost, port).ok());
}

}  // namespace
}  // namespace cpd
