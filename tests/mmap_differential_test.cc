// Differential suite over the two artifact load paths: the same v3 .cpdb
// served --load_mode heap and --load_mode mmap must produce byte-identical
// HTTP responses for every query type, every error path, and the frozen-
// clock scrape views. Also pins the delta-chain publication flow: a base
// artifact patched through a .cpdd chain (copy-on-write over the mapping in
// mmap mode, re-read + ApplyModelDelta on the heap) must serve bitwise the
// same bytes as a full rebuild of the final generation.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cpd_model.h"
#include "core/model_artifact.h"
#include "core/model_delta.h"
#include "obs/clock.h"
#include "serve/profile_index.h"
#include "server/http_server.h"
#include "server/json_api.h"
#include "server/model_registry.h"
#include "test_util.h"

namespace cpd {
namespace {

using serve::ArtifactLoadMode;
using server::HttpClient;
using server::HttpServer;
using server::HttpServerOptions;
using server::IoMode;

constexpr const char* kHost = "127.0.0.1";

class MmapDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph(223));
    CpdConfig config;
    config.num_communities = 4;
    config.num_topics = 6;
    config.em_iterations = 4;
    config.seed = 31;
    auto model = CpdModel::Train(data_->graph, config);
    CPD_CHECK(model.ok());
    model_ = new CpdModel(std::move(*model));

    base_path_ = new std::string(::testing::TempDir() + "/mmap_diff_g1.cpdb");
    CPD_CHECK(model_
                  ->SaveBinary(*base_path_,
                               &data_->graph.corpus().vocabulary(),
                               ArtifactWriteOptions{}, /*generation=*/1)
                  .ok());

    // Fabricate a three-generation lineage the way ingest would: generation
    // 2 retouches two pi rows and perturbs every global estimate;
    // generation 3 touches two more rows, appends one user AND one
    // vocabulary word (the COW overlay's hardest case: pi growth + phi
    // reshape + appended-word vocabulary rebuild in one delta).
    auto decoded = ReadModelArtifact(*base_path_);
    CPD_CHECK(decoded.ok());
    const ModelArtifact base = std::move(*decoded);
    const int c_width = base.num_communities;

    ModelArtifact gen2 = base;
    gen2.generation = 2;
    RotateRow(&gen2.pi, 1, c_width);
    RotateRow(&gen2.pi, 3, c_width);
    std::swap(gen2.theta[0], gen2.theta[1]);
    std::swap(gen2.phi[0], gen2.phi[1]);
    std::swap(gen2.eta[0], gen2.eta[1]);
    std::swap(gen2.weights[0], gen2.weights[1]);
    std::swap(gen2.popularity[0], gen2.popularity[1]);
    for (int64_t& frequency : gen2.vocab_frequencies) ++frequency;

    ModelArtifact gen3 = gen2;
    gen3.generation = 3;
    RotateRow(&gen3.pi, 0, c_width);
    RotateRow(&gen3.pi, 4, c_width);
    new_user_ = static_cast<int>(gen3.num_users);
    for (int c = 0; c < c_width; ++c) {
      gen3.pi.push_back(2.0 * (c_width - c) /
                        (c_width * (c_width + 1.0)));
    }
    gen3.num_users += 1;
    appended_word_ = static_cast<int>(gen3.vocab_size);
    std::vector<double> widened_phi;
    widened_phi.reserve(static_cast<size_t>(gen3.num_topics) *
                        (gen3.vocab_size + 1));
    for (int z = 0; z < gen3.num_topics; ++z) {
      const double* row = gen3.phi.data() + z * gen3.vocab_size;
      widened_phi.insert(widened_phi.end(), row, row + gen3.vocab_size);
      widened_phi.push_back(1e-3 * (z + 1));
    }
    gen3.phi = std::move(widened_phi);
    gen3.vocab_size += 1;
    gen3.vocab_words.push_back("zzz@appended");
    gen3.vocab_frequencies.push_back(4);
    std::swap(gen3.theta[2], gen3.theta[3]);
    std::swap(gen3.eta[2], gen3.eta[3]);
    std::swap(gen3.popularity[2], gen3.popularity[3]);
    CPD_CHECK(gen3.Validate().ok());

    auto delta12 = BuildModelDelta(base, gen2);
    CPD_CHECK(delta12.ok());
    auto delta23 = BuildModelDelta(gen2, gen3);
    CPD_CHECK(delta23.ok());
    delta12_path_ = new std::string(::testing::TempDir() + "/mmap_diff_12.cpdd");
    delta23_path_ = new std::string(::testing::TempDir() + "/mmap_diff_23.cpdd");
    full3_path_ = new std::string(::testing::TempDir() + "/mmap_diff_g3.cpdb");
    CPD_CHECK(WriteModelDelta(*delta12_path_, *delta12).ok());
    CPD_CHECK(WriteModelDelta(*delta23_path_, *delta23).ok());
    CPD_CHECK(WriteModelArtifact(*full3_path_, gen3).ok());
  }

  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    delete base_path_;
    delete delta12_path_;
    delete delta23_path_;
    delete full3_path_;
    model_ = nullptr;
    data_ = nullptr;
    base_path_ = delta12_path_ = delta23_path_ = full3_path_ = nullptr;
  }

  /// Rotates one matrix row left by one slot: values stay positive and the
  /// row sum is preserved, but the row is bitwise-different (the trained
  /// estimates are never uniform).
  static void RotateRow(std::vector<double>* matrix, size_t row, int width) {
    double* begin = matrix->data() + row * static_cast<size_t>(width);
    std::rotate(begin, begin + 1, begin + width);
  }

  /// Non-owning alias of the suite-cached graph (it outlives every test).
  static std::shared_ptr<const SocialGraph> SharedGraph() {
    return {&data_->graph, [](const SocialGraph*) {}};
  }

  static std::unique_ptr<server::ModelRegistry> MakeRegistry(
      ArtifactLoadMode mode) {
    serve::ProfileIndexOptions options;
    options.load_mode = mode;
    auto registry =
        std::make_unique<server::ModelRegistry>(options, SharedGraph());
    registry->SetClock([] { return int64_t{1754600000000}; });
    return registry;
  }

  struct Exchange {
    std::string method;
    std::string target;
    std::string body;
  };

  /// Query-only trace: all four query types, a batch with a per-slot
  /// error, the GET shortcuts, the delta-introduced user and word, and a
  /// keep-alive-safe error path. Deliberately free of /v1/models, /statsz,
  /// and /metricsz — those legitimately differ between a delta-chained
  /// registry and a fresh full load (load counters, source path).
  static std::vector<Exchange> QueryTrace() {
    return {
        {"POST", "/v1/query",
         R"({"type":"membership","user":1,"top_k":4,"include_distribution":true})"},
        {"POST", "/v1/query",
         R"({"type":"membership","user":3,"top_k":3,"include_distribution":true})"},
        {"POST", "/v1/query", R"({"type":"rank","words":[1,2],"top_k":3})"},
        {"POST", "/v1/query",
         R"({"type":"diffusion","source":0,"target":1,"document":1,"time_bin":2})"},
        {"POST", "/v1/query", R"({"type":"top_users","community":1,"top_k":5})"},
        {"POST", "/v1/query", R"({"type":"top_users","community":0,"top_k":3})"},
        {"POST", "/v1/query",
         R"({"batch":[{"type":"membership","user":0,"top_k":2},)"
         R"({"type":"membership","user":999999},)"
         R"({"type":"rank","words":[0],"top_k":2}]})"},
        {"GET", "/v1/membership/1?k=4&distribution=1", ""},
        // The user and word that only exist from generation 3 on (errors
        // before the chain lands; identical errors in both load modes).
        {"POST", "/v1/query",
         R"({"type":"membership","user":)" + std::to_string(new_user_) +
             R"(,"top_k":3,"include_distribution":true})"},
        {"GET", "/v1/membership/" + std::to_string(new_user_) + "?k=3", ""},
        {"POST", "/v1/query",
         R"({"type":"rank","words":[)" + std::to_string(appended_word_) +
             R"(],"top_k":4})"},
        {"POST", "/v1/query", R"({"type":"membership","user":999999})"},
    };
  }

  /// Runs the trace against a pre-loaded registry over one keep-alive
  /// connection with frozen clocks; returns "status\nbody" per exchange.
  static std::vector<std::string> ServeTrace(
      server::ModelRegistry* registry, const std::vector<Exchange>& trace) {
    obs::SetClockForTest([]() -> int64_t { return 1754600000000; });
    HttpServerOptions options;
    options.port = 0;
    options.threads = 4;
    options.io_mode = IoMode::kEpoll;
    options.log_requests = false;
    HttpServer http_server(options);
    server::ServiceStats stats;
    server::RegisterCpdRoutes(&http_server, registry, &stats);
    CPD_CHECK(http_server.Start().ok());
    std::vector<std::string> results;
    auto client = HttpClient::Connect(kHost, http_server.port());
    CPD_CHECK(client.ok());
    for (const Exchange& exchange : trace) {
      auto response =
          client->RoundTrip(exchange.method, exchange.target, exchange.body);
      CPD_CHECK(response.ok());
      results.push_back(std::to_string(response->status) + "\n" +
                        response->body);
    }
    http_server.Stop();
    obs::SetClockForTest(nullptr);
    return results;
  }

  static SynthResult* data_;
  static CpdModel* model_;
  static std::string* base_path_;
  static std::string* delta12_path_;
  static std::string* delta23_path_;
  static std::string* full3_path_;
  static int new_user_;
  static int appended_word_;
};

SynthResult* MmapDifferentialTest::data_ = nullptr;
CpdModel* MmapDifferentialTest::model_ = nullptr;
std::string* MmapDifferentialTest::base_path_ = nullptr;
std::string* MmapDifferentialTest::delta12_path_ = nullptr;
std::string* MmapDifferentialTest::delta23_path_ = nullptr;
std::string* MmapDifferentialTest::full3_path_ = nullptr;
int MmapDifferentialTest::new_user_ = 0;
int MmapDifferentialTest::appended_word_ = 0;

TEST_F(MmapDifferentialTest, CanonicalTraceIsByteIdenticalAcrossLoadModes) {
  // One artifact, two load paths, plus the scrape views: both registries
  // did exactly one load with frozen clocks, so /statsz and /metricsz must
  // match raw too — the wire never betrays which path backs the spans.
  std::vector<Exchange> trace = QueryTrace();
  trace.push_back({"GET", "/v1/models", ""});
  trace.push_back({"GET", "/metricsz", ""});
  trace.push_back({"GET", "/statsz", ""});

  auto heap = MakeRegistry(ArtifactLoadMode::kHeap);
  ASSERT_TRUE(heap->LoadFrom(*base_path_).ok());
  ASSERT_FALSE(heap->Snapshot()->index.is_mmap_backed());
  auto mapped = MakeRegistry(ArtifactLoadMode::kMmap);
  ASSERT_TRUE(mapped->LoadFrom(*base_path_).ok());
  ASSERT_TRUE(mapped->Snapshot()->index.is_mmap_backed());
  EXPECT_EQ(mapped->Snapshot()->index.artifact_generation(), 1u);

  const std::vector<std::string> heap_results = ServeTrace(heap.get(), trace);
  const std::vector<std::string> mmap_results =
      ServeTrace(mapped.get(), trace);
  ASSERT_EQ(heap_results.size(), mmap_results.size());
  for (size_t i = 0; i < heap_results.size(); ++i) {
    EXPECT_EQ(heap_results[i], mmap_results[i])
        << trace[i].method << " " << trace[i].target << " " << trace[i].body;
  }
}

TEST_F(MmapDifferentialTest, AutoModeMapsV3AndFallsBackForLegacy) {
  auto decoded = ReadModelArtifact(*base_path_);
  ASSERT_TRUE(decoded.ok());
  ArtifactWriteOptions v2_options;
  v2_options.version = 2;
  const std::string v2_path = ::testing::TempDir() + "/mmap_diff_v2.cpdb";
  ASSERT_TRUE(WriteModelArtifact(v2_path, *decoded, v2_options).ok());

  // kMmap is strict: a v2 artifact has no layout to map, and the failed
  // load must leave nothing serving (load-then-swap).
  auto strict = MakeRegistry(ArtifactLoadMode::kMmap);
  const Status refused = strict->LoadFrom(v2_path);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.ToString();
  EXPECT_EQ(strict->Snapshot(), nullptr);
  EXPECT_EQ(strict->reload_failures(), 1u);
  ASSERT_TRUE(strict->LoadFrom(*base_path_).ok());
  EXPECT_TRUE(strict->Snapshot()->index.is_mmap_backed());

  // kAuto maps the v3 file and silently copies the v2 one; both serve.
  auto automatic = MakeRegistry(ArtifactLoadMode::kAuto);
  ASSERT_TRUE(automatic->LoadFrom(*base_path_).ok());
  EXPECT_TRUE(automatic->Snapshot()->index.is_mmap_backed());
  ASSERT_TRUE(automatic->LoadFrom(v2_path).ok());
  EXPECT_FALSE(automatic->Snapshot()->index.is_mmap_backed());
}

TEST_F(MmapDifferentialTest, DeltaChainMatchesFullRebuildBitwise) {
  const std::vector<Exchange> trace = QueryTrace();
  std::vector<std::vector<std::string>> chained;
  std::vector<std::vector<std::string>> rebuilt;
  std::vector<std::string> pre_chain;

  for (const auto mode :
       {ArtifactLoadMode::kHeap, ArtifactLoadMode::kMmap}) {
    auto chain = MakeRegistry(mode);
    ASSERT_TRUE(chain->LoadFrom(*base_path_).ok());
    if (mode == ArtifactLoadMode::kHeap) {
      pre_chain = ServeTrace(chain.get(), trace);
    }
    ASSERT_TRUE(chain->LoadDeltaFrom(*delta12_path_).ok());
    ASSERT_TRUE(chain->LoadDeltaFrom(*delta23_path_).ok());
    const auto snapshot = chain->Snapshot();
    EXPECT_EQ(snapshot->index.is_mmap_backed(),
              mode == ArtifactLoadMode::kMmap);
    EXPECT_EQ(snapshot->index.artifact_generation(), 3u);
    EXPECT_EQ(snapshot->delta_path, *delta23_path_);
    chained.push_back(ServeTrace(chain.get(), trace));

    auto full = MakeRegistry(mode);
    ASSERT_TRUE(full->LoadFrom(*full3_path_).ok());
    EXPECT_EQ(full->Snapshot()->index.artifact_generation(), 3u);
    rebuilt.push_back(ServeTrace(full.get(), trace));
  }

  ASSERT_EQ(chained.size(), 2u);
  ASSERT_EQ(rebuilt.size(), 2u);
  for (size_t i = 0; i < trace.size(); ++i) {
    // COW overlay == heap re-patch == full artifact, in either load mode:
    // four ways to reach generation 3, one set of response bytes.
    EXPECT_EQ(chained[0][i], chained[1][i])
        << "chain heap vs mmap: " << trace[i].target << " " << trace[i].body;
    EXPECT_EQ(rebuilt[0][i], rebuilt[1][i])
        << "full heap vs mmap: " << trace[i].target << " " << trace[i].body;
    EXPECT_EQ(chained[0][i], rebuilt[0][i])
        << "chain vs full rebuild: " << trace[i].target << " "
        << trace[i].body;
  }

  // The chain genuinely moved the estimates (user 1's pi row was rotated
  // in generation 2), and genuinely grew the model: the user and word that
  // 404'd against the base resolve after the chain lands.
  EXPECT_NE(pre_chain[0], chained[0][0]);
  EXPECT_NE(pre_chain[8], chained[0][8]);
  EXPECT_EQ(chained[0][8].substr(0, 3), "200");
  EXPECT_EQ(chained[0][10].substr(0, 3), "200");
}

TEST_F(MmapDifferentialTest, AdminReloadDeltaIsByteIdenticalAcrossLoadModes) {
  // The same chain, driven over the wire: POST /admin/reload {"delta":...}
  // twice, with the queries interleaved, then every delta-specific error
  // path, then the scrape views. Both registries walk identical load
  // sequences, so even /metricsz and /statsz must compare raw.
  std::vector<Exchange> trace;
  trace.push_back(
      {"POST", "/admin/reload", R"({"delta":")" + *delta12_path_ + R"("})"});
  trace.push_back(
      {"POST", "/v1/query",
       R"({"type":"membership","user":1,"top_k":4,"include_distribution":true})"});
  trace.push_back(
      {"POST", "/admin/reload", R"({"delta":")" + *delta23_path_ + R"("})"});
  for (Exchange& exchange : QueryTrace()) trace.push_back(std::move(exchange));
  // "path" and "delta" are mutually exclusive -> 400, nothing swaps.
  trace.push_back({"POST", "/admin/reload",
                   R"({"path":")" + *full3_path_ + R"(","delta":")" +
                       *delta12_path_ + R"("})"});
  // Replaying a consumed delta -> 500 (it patches generation 1, the
  // registry serves generation 3); the old model keeps serving.
  trace.push_back(
      {"POST", "/admin/reload", R"({"delta":")" + *delta12_path_ + R"("})"});
  // A delta against a name that never loaded -> 409 FailedPrecondition.
  trace.push_back({"POST", "/admin/reload",
                   R"({"model":"ghost","delta":")" + *delta12_path_ + R"("})"});
  trace.push_back({"GET", "/v1/models", ""});
  trace.push_back({"GET", "/metricsz", ""});
  trace.push_back({"GET", "/statsz", ""});

  std::vector<std::vector<std::string>> results;
  for (const auto mode :
       {ArtifactLoadMode::kHeap, ArtifactLoadMode::kMmap}) {
    auto registry = MakeRegistry(mode);
    ASSERT_TRUE(registry->LoadFrom(*base_path_).ok());
    results.push_back(ServeTrace(registry.get(), trace));
    const auto snapshot = registry->Snapshot();
    EXPECT_EQ(snapshot->index.artifact_generation(), 3u);
    EXPECT_EQ(snapshot->index.is_mmap_backed(),
              mode == ArtifactLoadMode::kMmap);
  }

  ASSERT_EQ(results.size(), 2u);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(results[0][i], results[1][i])
        << trace[i].method << " " << trace[i].target << " " << trace[i].body;
  }
  // The reload responses publish the lineage: registry load counter 2 then
  // 3, each naming the delta it applied.
  EXPECT_EQ(results[0][0].substr(0, 3), "200");
  EXPECT_NE(results[0][0].find("\"generation\":2"), std::string::npos);
  EXPECT_NE(results[0][0].find(*delta12_path_), std::string::npos);
  EXPECT_EQ(results[0][2].substr(0, 3), "200");
  EXPECT_NE(results[0][2].find("\"generation\":3"), std::string::npos);
  const size_t tail = trace.size();
  EXPECT_EQ(results[0][tail - 6].substr(0, 3), "400");  // path+delta clash.
  EXPECT_EQ(results[0][tail - 5].substr(0, 3), "500");  // stale delta base.
  EXPECT_EQ(results[0][tail - 4].substr(0, 3), "409");  // ghost model.
}

}  // namespace
}  // namespace cpd
