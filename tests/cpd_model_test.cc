#include <gtest/gtest.h>

#include <filesystem>

#include "core/cpd_model.h"
#include "test_util.h"
#include "util/file_util.h"

namespace cpd {
namespace {

CpdConfig ModelConfig() {
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 4;
  config.seed = 11;
  return config;
}

class CpdModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph());
    auto model = CpdModel::Train(data_->graph, ModelConfig());
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new CpdModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static SynthResult* data_;
  static CpdModel* model_;
};

SynthResult* CpdModelTest::data_ = nullptr;
CpdModel* CpdModelTest::model_ = nullptr;

TEST_F(CpdModelTest, OutputDimensions) {
  EXPECT_EQ(model_->num_communities(), 4);
  EXPECT_EQ(model_->num_topics(), 6);
  EXPECT_EQ(model_->num_users(), data_->graph.num_users());
  EXPECT_EQ(model_->vocab_size(), data_->graph.vocabulary_size());
}

TEST_F(CpdModelTest, MembershipsAreDistributions) {
  for (size_t u = 0; u < model_->num_users(); ++u) {
    const auto& pi = model_->Membership(static_cast<UserId>(u));
    double total = 0.0;
    for (double p : pi) {
      EXPECT_GT(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(CpdModelTest, ProfilesAreDistributions) {
  for (int c = 0; c < model_->num_communities(); ++c) {
    double total = 0.0;
    for (double p : model_->ContentProfile(c)) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int z = 0; z < model_->num_topics(); ++z) {
    double total = 0.0;
    for (double p : model_->TopicWords(z)) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(CpdModelTest, EtaAggregationConsistent) {
  for (int c = 0; c < model_->num_communities(); ++c) {
    for (int c2 = 0; c2 < model_->num_communities(); ++c2) {
      double total = 0.0;
      for (int z = 0; z < model_->num_topics(); ++z) total += model_->Eta(c, c2, z);
      EXPECT_NEAR(model_->EtaAggregated(c, c2), total, 1e-12);
    }
  }
}

TEST_F(CpdModelTest, TopCommunitiesSortedByMembership) {
  const auto top = model_->TopCommunities(0, 2);
  ASSERT_EQ(top.size(), 2u);
  const auto& pi = model_->Membership(0);
  EXPECT_GE(pi[static_cast<size_t>(top[0])], pi[static_cast<size_t>(top[1])]);
}

TEST_F(CpdModelTest, PopularityClampsOutOfRangeTime) {
  const double last = model_->TopicPopularity(model_->num_time_bins() - 1, 0);
  EXPECT_DOUBLE_EQ(model_->TopicPopularity(model_->num_time_bins() + 50, 0), last);
  EXPECT_DOUBLE_EQ(model_->TopicPopularity(-5, 0), model_->TopicPopularity(0, 0));
}

TEST_F(CpdModelTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cpd_model_test.txt";
  ASSERT_TRUE(model_->SaveToFile(path).ok());
  auto loaded = CpdModel::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_communities(), model_->num_communities());
  EXPECT_EQ(loaded->num_topics(), model_->num_topics());
  EXPECT_EQ(loaded->num_users(), model_->num_users());
  // Spot-check numeric fidelity.
  for (size_t u = 0; u < model_->num_users(); u += 7) {
    const auto& original = model_->Membership(static_cast<UserId>(u));
    const auto& reloaded = loaded->Membership(static_cast<UserId>(u));
    for (size_t c = 0; c < original.size(); ++c) {
      EXPECT_NEAR(original[c], reloaded[c], 1e-9);
    }
  }
  EXPECT_NEAR(loaded->Eta(1, 2, 3), model_->Eta(1, 2, 3), 1e-9);
  std::filesystem::remove(path);
}

TEST_F(CpdModelTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/cpd_model_garbage.txt";
  ASSERT_TRUE(WriteStringToFile(path, "not a model\n1 2 3\n").ok());
  EXPECT_FALSE(CpdModel::LoadFromFile(path).ok());
  std::filesystem::remove(path);
}

TEST_F(CpdModelTest, BinarySaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cpd_model_test.cpdb";
  ASSERT_TRUE(model_->SaveBinary(path).ok());
  auto loaded = CpdModel::LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_communities(), model_->num_communities());
  EXPECT_EQ(loaded->num_topics(), model_->num_topics());
  EXPECT_EQ(loaded->num_users(), model_->num_users());
  EXPECT_EQ(loaded->num_time_bins(), model_->num_time_bins());
  // Binary round trips are bit-exact, not just close.
  for (size_t u = 0; u < model_->num_users(); u += 5) {
    const auto original = model_->Membership(static_cast<UserId>(u));
    const auto reloaded = loaded->Membership(static_cast<UserId>(u));
    for (size_t c = 0; c < original.size(); ++c) {
      EXPECT_EQ(original[c], reloaded[c]);
    }
  }
  EXPECT_EQ(loaded->Eta(1, 2, 3), model_->Eta(1, 2, 3));
  std::filesystem::remove(path);
}

TEST_F(CpdModelTest, LoadBinaryRejectsTextModels) {
  const std::string path = ::testing::TempDir() + "/cpd_model_text.cpd";
  ASSERT_TRUE(model_->SaveToFile(path).ok());
  EXPECT_FALSE(CpdModel::LoadBinary(path).ok());
  // But the text loader still reads it (back-compat contract).
  EXPECT_TRUE(CpdModel::LoadFromFile(path).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cpd
