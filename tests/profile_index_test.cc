#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/cpd_model.h"
#include "core/model_artifact.h"
#include "parallel/thread_pool.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "test_util.h"
#include "util/file_util.h"

namespace cpd {
namespace {

using serve::ProfileIndex;
using serve::QueryEngine;
using serve::QueryRequest;
using serve::QueryResponse;

class ProfileIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph(131));
    CpdConfig config;
    config.num_communities = 4;
    config.num_topics = 6;
    config.em_iterations = 5;
    config.seed = 17;
    auto model = CpdModel::Train(data_->graph, config);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new CpdModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static std::string TempPath(const char* name) {
    return ::testing::TempDir() + "/" + name;
  }

  static SynthResult* data_;
  static CpdModel* model_;
};

SynthResult* ProfileIndexTest::data_ = nullptr;
CpdModel* ProfileIndexTest::model_ = nullptr;

// ----- binary persistence -----

TEST_F(ProfileIndexTest, TextAndBinaryRoundTripsAreBitExact) {
  const std::string text_path = TempPath("round_trip.cpd");
  const std::string binary_path = TempPath("round_trip.cpdb");
  ASSERT_TRUE(model_->SaveToFile(text_path).ok());
  ASSERT_TRUE(model_->SaveBinary(binary_path).ok());

  auto from_text = CpdModel::LoadFromFile(text_path);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  auto from_binary = CpdModel::LoadBinary(binary_path);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();

  // Both load paths must reproduce every matrix of the trained model
  // bit-for-bit (text uses precision 17, binary stores raw doubles).
  for (const CpdModel* loaded : {&*from_text, &*from_binary}) {
    ASSERT_EQ(loaded->num_communities(), model_->num_communities());
    ASSERT_EQ(loaded->num_topics(), model_->num_topics());
    ASSERT_EQ(loaded->num_users(), model_->num_users());
    ASSERT_EQ(loaded->vocab_size(), model_->vocab_size());
    ASSERT_EQ(loaded->num_time_bins(), model_->num_time_bins());
    for (size_t u = 0; u < model_->num_users(); ++u) {
      const auto expected = model_->Membership(static_cast<UserId>(u));
      const auto actual = loaded->Membership(static_cast<UserId>(u));
      for (size_t c = 0; c < expected.size(); ++c) {
        EXPECT_EQ(expected[c], actual[c]) << "pi[" << u << "][" << c << "]";
      }
    }
    for (int c = 0; c < model_->num_communities(); ++c) {
      const auto expected = model_->ContentProfile(c);
      const auto actual = loaded->ContentProfile(c);
      for (size_t z = 0; z < expected.size(); ++z) {
        EXPECT_EQ(expected[z], actual[z]) << "theta[" << c << "][" << z << "]";
      }
    }
    for (int z = 0; z < model_->num_topics(); ++z) {
      const auto expected = model_->TopicWords(z);
      const auto actual = loaded->TopicWords(z);
      for (size_t w = 0; w < expected.size(); ++w) {
        EXPECT_EQ(expected[w], actual[w]) << "phi[" << z << "][" << w << "]";
      }
    }
    for (int c = 0; c < model_->num_communities(); ++c) {
      for (int c2 = 0; c2 < model_->num_communities(); ++c2) {
        for (int z = 0; z < model_->num_topics(); ++z) {
          EXPECT_EQ(loaded->Eta(c, c2, z), model_->Eta(c, c2, z));
        }
      }
    }
    ASSERT_EQ(loaded->DiffusionWeights().size(),
              model_->DiffusionWeights().size());
    for (size_t k = 0; k < model_->DiffusionWeights().size(); ++k) {
      EXPECT_EQ(loaded->DiffusionWeights()[k], model_->DiffusionWeights()[k]);
    }
    for (int32_t t = 0; t < model_->num_time_bins(); ++t) {
      for (int z = 0; z < model_->num_topics(); ++z) {
        EXPECT_EQ(loaded->TopicPopularity(t, z), model_->TopicPopularity(t, z));
      }
    }
  }
  std::filesystem::remove(text_path);
  std::filesystem::remove(binary_path);
}

TEST_F(ProfileIndexTest, LoadBinaryRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.cpdb");
  ASSERT_TRUE(WriteStringToFile(path, "NOTCPDBthis is junk data").ok());
  const auto loaded = CpdModel::LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST_F(ProfileIndexTest, LoadBinaryRejectsUnknownVersion) {
  const std::string path = TempPath("bad_version.cpdb");
  ASSERT_TRUE(model_->SaveBinary(path).ok());
  // Bump the version field (bytes 8..11, little-endian u32) to 99.
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[8] = 99;
  ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
  const auto loaded = CpdModel::LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnimplemented);
  std::filesystem::remove(path);
}

TEST_F(ProfileIndexTest, LoadBinaryRejectsForeignEndianness) {
  const std::string path = TempPath("bad_endian.cpdb");
  ASSERT_TRUE(model_->SaveBinary(path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  // Reverse the endian tag (bytes 12..15).
  std::swap(mutated[12], mutated[15]);
  std::swap(mutated[13], mutated[14]);
  ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
  EXPECT_FALSE(CpdModel::LoadBinary(path).ok());
  std::filesystem::remove(path);
}

TEST_F(ProfileIndexTest, LoadBinaryRejectsTruncatedFile) {
  const std::string path = TempPath("truncated.cpdb");
  ASSERT_TRUE(model_->SaveBinary(path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  // Cut at several depths: inside the header and inside the matrix body.
  for (const size_t keep : {size_t{10}, size_t{40}, bytes->size() / 2,
                            bytes->size() - 8}) {
    ASSERT_TRUE(WriteStringToFile(path, bytes->substr(0, keep)).ok());
    const auto loaded = CpdModel::LoadBinary(path);
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange)
        << "kept " << keep << " bytes";
    // A cut inside the body must name the section whose bytes went
    // missing, so a torture-test failure is diagnosable from the message.
    if (keep > 76) {
      EXPECT_NE(loaded.status().message().find("section"), std::string::npos)
          << "kept " << keep << " bytes: " << loaded.status().ToString();
    }
  }
  // The legacy sequential format names the truncated section too.
  ModelArtifact legacy_artifact = model_->ToArtifact();
  ArtifactWriteOptions v2_options;
  v2_options.version = 2;
  auto v2 = EncodeModelArtifact(legacy_artifact, v2_options);
  ASSERT_TRUE(v2.ok());
  {
    const auto loaded = DecodeModelArtifact(v2->substr(0, v2->size() / 2));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
    EXPECT_NE(loaded.status().message().find("section"), std::string::npos)
        << loaded.status().ToString();
  }
  // Trailing garbage is rejected too (a truncated *next* artifact would
  // otherwise hide there).
  ASSERT_TRUE(WriteStringToFile(path, *bytes + "garbage").ok());
  EXPECT_FALSE(CpdModel::LoadBinary(path).ok());
  std::filesystem::remove(path);
}

// ----- index construction equivalence -----

TEST_F(ProfileIndexTest, IndexMatchesModelAccessors) {
  const ProfileIndex index = ProfileIndex::FromModel(*model_);
  ASSERT_EQ(index.num_communities(), model_->num_communities());
  ASSERT_EQ(index.num_topics(), model_->num_topics());
  ASSERT_EQ(index.num_users(), model_->num_users());
  ASSERT_EQ(index.vocab_size(), model_->vocab_size());

  for (size_t u = 0; u < model_->num_users(); ++u) {
    const auto expected = model_->Membership(static_cast<UserId>(u));
    const auto actual = index.Membership(static_cast<UserId>(u));
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t c = 0; c < expected.size(); ++c) {
      EXPECT_EQ(expected[c], actual[c]);
    }
  }
  for (int c = 0; c < model_->num_communities(); ++c) {
    const auto expected = model_->ContentProfile(c);
    const auto actual = index.ContentProfile(c);
    for (size_t z = 0; z < expected.size(); ++z) {
      EXPECT_EQ(expected[z], actual[z]);
    }
    for (int c2 = 0; c2 < model_->num_communities(); ++c2) {
      EXPECT_EQ(index.EtaAggregated(c, c2), model_->EtaAggregated(c, c2));
      for (int z = 0; z < model_->num_topics(); ++z) {
        EXPECT_EQ(index.Eta(c, c2, z), model_->Eta(c, c2, z));
      }
    }
  }
  for (int z = 0; z < model_->num_topics(); ++z) {
    const auto expected = model_->TopicWords(z);
    const auto actual = index.TopicWords(z);
    for (size_t w = 0; w < expected.size(); ++w) {
      EXPECT_EQ(expected[w], actual[w]);
    }
  }
}

TEST_F(ProfileIndexTest, TopCommunitiesMatchModel) {
  serve::ProfileIndexOptions options;
  options.membership_top_k = 3;
  const ProfileIndex index = ProfileIndex::FromModel(*model_, options);
  for (size_t u = 0; u < model_->num_users(); ++u) {
    const auto expected = model_->TopCommunities(static_cast<UserId>(u), 3);
    const auto actual = index.TopCommunities(static_cast<UserId>(u));
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].community, expected[i]);
      EXPECT_EQ(actual[i].weight,
                model_->Membership(static_cast<UserId>(u))
                    [static_cast<size_t>(expected[i])]);
    }
  }
}

TEST_F(ProfileIndexTest, CommunityMembersAreWeightSortedAndComplete) {
  const ProfileIndex index = ProfileIndex::FromModel(*model_);
  size_t total = 0;
  for (int c = 0; c < index.num_communities(); ++c) {
    const auto members = index.CommunityMembers(c);
    total += members.size();
    for (size_t i = 1; i < members.size(); ++i) {
      const double prev =
          index.Membership(members[i - 1])[static_cast<size_t>(c)];
      const double cur = index.Membership(members[i])[static_cast<size_t>(c)];
      EXPECT_GE(prev, cur);
    }
  }
  // Every user appears in exactly top_k postings (top_k clamped to |C|).
  const size_t k = static_cast<size_t>(
      std::min(index.membership_top_k(), index.num_communities()));
  EXPECT_EQ(total, index.num_users() * k);
}

// ----- serving equivalence: in-memory model vs .cpdb artifact -----

/// All four query types must answer bit-identically whether the index came
/// from the in-memory model or from the binary artifact on disk.
TEST_F(ProfileIndexTest, CpdbIndexAnswersBitIdenticallyToModelIndex) {
  const std::string path = TempPath("serving.cpdb");
  ASSERT_TRUE(model_->SaveBinary(path).ok());
  const ProfileIndex from_model = ProfileIndex::FromModel(*model_);
  auto from_file = ProfileIndex::LoadFromFile(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();

  const QueryEngine model_engine(from_model, &data_->graph);
  const QueryEngine file_engine(*from_file, &data_->graph);

  std::vector<QueryRequest> requests;
  for (UserId u = 0; u < 10; ++u) {
    serve::MembershipRequest membership;
    membership.user = u;
    membership.include_distribution = true;
    requests.push_back(membership);
  }
  serve::RankCommunitiesRequest rank;
  rank.words = {0, 1};
  requests.push_back(rank);
  serve::TopUsersRequest top_users;
  top_users.community = 1;
  top_users.top_k = 7;
  requests.push_back(top_users);
  for (size_t e = 0; e < std::min<size_t>(5, data_->graph.num_diffusion_links());
       ++e) {
    const DiffusionLink& link = data_->graph.diffusion_links()[e];
    serve::DiffusionRequest diffusion;
    diffusion.source = data_->graph.document(link.i).user;
    diffusion.target = data_->graph.document(link.j).user;
    diffusion.document = link.j;
    diffusion.time_bin = link.time;
    requests.push_back(diffusion);
  }

  for (const QueryRequest& request : requests) {
    const auto expected = model_engine.Query(request);
    const auto actual = file_engine.Query(request);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(expected->index(), actual->index());
    if (const auto* m = std::get_if<serve::MembershipResponse>(&*expected)) {
      const auto& f = std::get<serve::MembershipResponse>(*actual);
      ASSERT_EQ(m->top.size(), f.top.size());
      for (size_t i = 0; i < m->top.size(); ++i) {
        EXPECT_EQ(m->top[i].community, f.top[i].community);
        EXPECT_EQ(m->top[i].weight, f.top[i].weight);
      }
      EXPECT_EQ(m->distribution, f.distribution);
    } else if (const auto* r =
                   std::get_if<serve::RankCommunitiesResponse>(&*expected)) {
      const auto& f = std::get<serve::RankCommunitiesResponse>(*actual);
      ASSERT_EQ(r->ranked.size(), f.ranked.size());
      for (size_t i = 0; i < r->ranked.size(); ++i) {
        EXPECT_EQ(r->ranked[i].community, f.ranked[i].community);
        EXPECT_EQ(r->ranked[i].score, f.ranked[i].score);
        EXPECT_EQ(r->ranked[i].topic_distribution,
                  f.ranked[i].topic_distribution);
      }
    } else if (const auto* d =
                   std::get_if<serve::DiffusionResponse>(&*expected)) {
      const auto& f = std::get<serve::DiffusionResponse>(*actual);
      EXPECT_EQ(d->probability, f.probability);
      EXPECT_EQ(d->friendship_score, f.friendship_score);
    } else {
      const auto& m = std::get<serve::TopUsersResponse>(*expected);
      const auto& f = std::get<serve::TopUsersResponse>(*actual);
      EXPECT_EQ(m.users, f.users);
      EXPECT_EQ(m.weights, f.weights);
    }
  }
  std::filesystem::remove(path);
}

TEST_F(ProfileIndexTest, LoadFromFileReadsTextModelsToo) {
  const std::string path = TempPath("legacy.cpd");
  ASSERT_TRUE(model_->SaveToFile(path).ok());
  auto index = ProfileIndex::LoadFromFile(path);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_communities(), model_->num_communities());
  EXPECT_EQ(index->num_users(), model_->num_users());
  std::filesystem::remove(path);
}

// ----- query engine behavior -----

TEST_F(ProfileIndexTest, ScoringOnlyIndexSkipsMembershipStructures) {
  serve::ProfileIndexOptions options;
  options.build_membership_index = false;
  const ProfileIndex index = ProfileIndex::FromModel(*model_, options);
  EXPECT_FALSE(index.has_membership_index());
  EXPECT_TRUE(index.TopCommunities(0).empty());
  EXPECT_TRUE(index.CommunityMembers(0).empty());

  const QueryEngine engine(index, &data_->graph);
  // Scoring queries still serve...
  serve::RankCommunitiesRequest rank;
  rank.words = {0};
  EXPECT_TRUE(engine.RankCommunities(rank).ok());
  // ...while membership/top-users report the missing structure as a typed
  // precondition failure instead of returning empty results.
  serve::MembershipRequest membership;
  membership.user = 0;
  EXPECT_EQ(engine.Membership(membership).status().code(),
            StatusCode::kFailedPrecondition);
  serve::TopUsersRequest top_users;
  top_users.community = 0;
  EXPECT_EQ(engine.TopUsers(top_users).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ProfileIndexTest, QueriesValidateRequests) {
  const ProfileIndex index = ProfileIndex::FromModel(*model_);
  const QueryEngine engine(index);  // No graph bound.

  serve::MembershipRequest bad_user;
  bad_user.user = static_cast<UserId>(index.num_users());
  EXPECT_EQ(engine.Membership(bad_user).status().code(),
            StatusCode::kOutOfRange);

  serve::RankCommunitiesRequest bad_word;
  bad_word.words = {static_cast<WordId>(index.vocab_size())};
  EXPECT_EQ(engine.RankCommunities(bad_word).status().code(),
            StatusCode::kOutOfRange);

  serve::TopUsersRequest bad_community;
  bad_community.community = -1;
  EXPECT_EQ(engine.TopUsers(bad_community).status().code(),
            StatusCode::kOutOfRange);

  // Diffusion without a bound graph is a precondition failure, not a crash.
  serve::DiffusionRequest diffusion;
  diffusion.source = 0;
  diffusion.target = 1;
  diffusion.document = 0;
  EXPECT_EQ(engine.Diffusion(diffusion).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ProfileIndexTest, BatchMatchesSequentialAndIsolatesErrors) {
  const ProfileIndex index = ProfileIndex::FromModel(*model_);
  const QueryEngine engine(index, &data_->graph);

  std::vector<QueryRequest> requests;
  for (UserId u = 0; u < 20; ++u) {
    serve::MembershipRequest membership;
    membership.user = u;
    membership.include_distribution = true;
    requests.push_back(membership);
  }
  serve::MembershipRequest bad;
  bad.user = -5;
  requests.insert(requests.begin() + 7, bad);
  serve::RankCommunitiesRequest rank;
  rank.words = {2};
  requests.push_back(rank);

  ThreadPool pool(4);
  const auto pooled = engine.QueryBatch(requests, &pool);
  const auto inline_run = engine.QueryBatch(requests, nullptr);
  ASSERT_EQ(pooled.size(), requests.size());
  ASSERT_EQ(inline_run.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(pooled[i].ok(), inline_run[i].ok()) << "slot " << i;
    if (!pooled[i].ok()) {
      EXPECT_EQ(pooled[i].status().code(), inline_run[i].status().code());
      continue;
    }
    if (const auto* m = std::get_if<serve::MembershipResponse>(&*pooled[i])) {
      const auto& s = std::get<serve::MembershipResponse>(*inline_run[i]);
      EXPECT_EQ(m->distribution, s.distribution);
    }
  }
  // The bad slot failed; its neighbors did not.
  EXPECT_FALSE(pooled[7].ok());
  EXPECT_TRUE(pooled[6].ok());
  EXPECT_TRUE(pooled[8].ok());
}

// ----- artifact v2: bundled vocabulary -----

TEST_F(ProfileIndexTest, BundledVocabularyRoundTrips) {
  const Vocabulary& vocab = data_->graph.corpus().vocabulary();
  ASSERT_EQ(vocab.size(), model_->vocab_size());
  const std::string path = TempPath("vocab_bundle.cpdb");
  ASSERT_TRUE(model_->SaveBinary(path, &vocab).ok());

  auto bundle = serve::LoadModelBundle(path);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ASSERT_NE(bundle->vocabulary, nullptr);
  ASSERT_EQ(bundle->vocabulary->size(), vocab.size());
  for (size_t w = 0; w < vocab.size(); ++w) {
    const auto id = static_cast<WordId>(w);
    EXPECT_EQ(bundle->vocabulary->WordOf(id), vocab.WordOf(id));
    EXPECT_EQ(bundle->vocabulary->Frequency(id), vocab.Frequency(id));
  }
  // The matrices are untouched by the extra section.
  EXPECT_EQ(bundle->index.num_users(), model_->num_users());
  EXPECT_EQ(bundle->index.Membership(0)[0], model_->Membership(0)[0]);
  std::filesystem::remove(path);
}

TEST_F(ProfileIndexTest, SaveBinaryRejectsMismatchedVocabulary) {
  Vocabulary wrong;
  wrong.GetOrAdd("one_word_only");
  const std::string path = TempPath("vocab_mismatch.cpdb");
  const Status saved = model_->SaveBinary(path, &wrong);
  EXPECT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kInvalidArgument);
}

TEST_F(ProfileIndexTest, ArtifactWithoutVocabularyLoadsWithNullVocab) {
  const std::string path = TempPath("no_vocab.cpdb");
  ASSERT_TRUE(model_->SaveBinary(path).ok());
  auto bundle = serve::LoadModelBundle(path);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->vocabulary, nullptr);
  std::filesystem::remove(path);
}

TEST_F(ProfileIndexTest, Version1ArtifactsStillLoad) {
  const std::string path = TempPath("v1_compat.cpdb");
  // The default save is v3 now, so build the v2 bytes explicitly, then
  // rewrite them as a v1 artifact: version byte back to 1, drop the
  // trailing empty vocabulary section (one u64 count).
  ArtifactWriteOptions v2_options;
  v2_options.version = 2;
  auto bytes = EncodeModelArtifact(model_->ToArtifact(), v2_options);
  ASSERT_TRUE(bytes.ok());
  std::string v1 = *bytes;
  ASSERT_EQ(v1[8], 2);
  v1[8] = 1;
  v1.resize(v1.size() - sizeof(uint64_t));
  ASSERT_TRUE(WriteStringToFile(path, v1).ok());

  auto bundle = serve::LoadModelBundle(path);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->vocabulary, nullptr);
  EXPECT_EQ(bundle->index.num_users(), model_->num_users());
  EXPECT_EQ(bundle->index.Membership(1)[0], model_->Membership(1)[0]);
  // A v1 reader would see trailing bytes if we forgot to truncate; prove
  // the v2 reader equally rejects a v1 body with vocab leftovers.
  std::string corrupt = *bytes;
  corrupt[8] = 1;
  EXPECT_FALSE(DecodeModelArtifact(corrupt).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cpd
