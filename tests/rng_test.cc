#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/math_util.h"
#include "util/rng.h"

namespace cpd {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoubleOpen();
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t x = rng.NextUint64(7);
    ASSERT_LT(x, 7u);
    ++counts[static_cast<size_t>(x)];
  }
  // Each bucket should be near 10000 (loose 5-sigma bound).
  for (int count : counts) EXPECT_NEAR(count, 10000, 500);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  std::vector<double> samples(200000);
  for (double& s : samples) s = rng.NextGaussian();
  EXPECT_NEAR(Mean(samples), 0.0, 0.01);
  EXPECT_NEAR(Variance(samples), 1.0, 0.02);
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(17);
  std::vector<double> samples(200000);
  for (double& s : samples) s = rng.NextExp();
  EXPECT_NEAR(Mean(samples), 1.0, 0.01);
  EXPECT_NEAR(Variance(samples), 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Split();
  // The child should not reproduce the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next64() == child.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cpd
