#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "parallel/thread_pool.h"

namespace cpd {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitAllBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      done.fetch_add(1);
    });
  }
  pool.WaitAll();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.WaitAll();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.WaitAll();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = max_concurrent.load();
      while (now > expected &&
             !max_concurrent.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      concurrent.fetch_sub(1);
    });
  }
  pool.WaitAll();
  EXPECT_GE(max_concurrent.load(), 2);
}

TEST(ParallelForTest, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&pool, 64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

}  // namespace
}  // namespace cpd
