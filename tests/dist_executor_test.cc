// The distributed E-step coordinator (src/dist/distributed_executor.h):
// bit-identity against the serial executor for the same seed and shard
// count — including under worker death and hangs mid-sweep, where the
// coordinator re-dispatches the shard's original RNG stream to a survivor —
// plus clean failure when every worker is lost, handshake rejection, a
// real-process end-to-end run via spawned cpd_worker binaries, and the
// cpd_train distributed-flag validation.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/diffusion_features.h"
#include "core/em_trainer.h"
#include "dist/distributed_executor.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "test_util.h"
#include "util/file_util.h"

namespace cpd {
namespace {

CpdConfig BaseConfig() {
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 6;
  config.gibbs_sweeps_per_em = 2;
  config.nu_iterations = 30;
  config.seed = 9;
  return config;
}

void ExpectSameModel(const ModelState& a, const ModelState& b) {
  EXPECT_EQ(a.doc_topic, b.doc_topic);
  EXPECT_EQ(a.doc_community, b.doc_community);
  EXPECT_EQ(a.n_uc, b.n_uc);
  EXPECT_EQ(a.n_u, b.n_u);
  EXPECT_EQ(a.n_cz, b.n_cz);
  EXPECT_EQ(a.n_c, b.n_c);
  EXPECT_EQ(a.n_zw, b.n_zw);
  EXPECT_EQ(a.n_z, b.n_z);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_EQ(a.eta, b.eta);
  EXPECT_EQ(a.weights, b.weights);
}

/// Joins the in-process worker threads on scope exit. Declared before the
/// trainer in every test so it joins only after the trainer (and thus the
/// coordinator, whose destructor drains the sockets) is gone.
struct WorkerFleet {
  std::vector<std::thread> threads;
  ~WorkerFleet() {
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
  }
};

/// ExecutorFactory building a DistributedExecutor over AF_UNIX socketpairs,
/// one in-process ServeWorker thread per entry in `hooks`.
EmTrainer::ExecutorFactory SocketpairFactory(
    WorkerFleet* fleet, std::vector<dist::WorkerHooks> hooks,
    int sweep_deadline_ms = 30000) {
  return [fleet, hooks = std::move(hooks), sweep_deadline_ms](
             const SocialGraph& graph, const CpdConfig& config,
             const LinkCaches& caches,
             ThreadPlan plan) -> StatusOr<std::unique_ptr<ShardExecutor>> {
    dist::DistributedOptions options;
    options.sweep_deadline_ms = sweep_deadline_ms;
    for (const dist::WorkerHooks& hook : hooks) {
      int fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        return Status::Unavailable("socketpair failed");
      }
      options.connected_fds.push_back(fds[0]);
      fleet->threads.emplace_back(
          [fd = fds[1], hook] { (void)dist::ServeWorker(fd, hook); });
    }
    return dist::MakeDistributedExecutor(graph, config, caches,
                                         std::move(plan), std::move(options));
  };
}

/// Trains the same tiny graph serially and distributed (over `hooks.size()`
/// in-process workers) with identical seed + shard count, asserting
/// bit-identical final models. Returns the distributed run's stats.
TrainStats ExpectDistributedMatchesSerial(int num_shards, SamplerMode mode,
                                          std::vector<dist::WorkerHooks> hooks,
                                          int sweep_deadline_ms = 30000) {
  const SynthResult data = testing::MakeTinyGraph(42);

  CpdConfig serial_config = BaseConfig();
  serial_config.sampler_mode = mode;
  serial_config.num_shards = num_shards;
  serial_config.executor_mode = ExecutorMode::kSerial;
  EmTrainer serial(data.graph, serial_config);
  EXPECT_TRUE(serial.Train().ok());

  WorkerFleet fleet;
  TrainStats dist_stats;
  {
    EmTrainer dist(data.graph, serial_config);
    dist.SetExecutorFactoryForTest(
        SocketpairFactory(&fleet, std::move(hooks), sweep_deadline_ms));
    const Status status = dist.Train();
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (status.ok()) {
      ExpectSameModel(serial.state(), dist.state());
      for (size_t i = 0; i < serial.stats().link_log_likelihood.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial.stats().link_log_likelihood[i],
                         dist.stats().link_log_likelihood[i]);
      }
    }
    dist_stats = dist.stats();
  }
  return dist_stats;
}

TEST(DistributedExecutorTest, BitIdenticalToSerialTwoWorkersThreeShards) {
  const TrainStats stats = ExpectDistributedMatchesSerial(
      3, SamplerMode::kSparse, std::vector<dist::WorkerHooks>(2));
  EXPECT_EQ(stats.dist_workers_connected, 2);
  EXPECT_EQ(stats.dist_workers_lost, 0);
  EXPECT_EQ(stats.dist_shards_redispatched, 0);
  EXPECT_GT(stats.dist_bytes_out, 0u);
  EXPECT_GT(stats.dist_bytes_in, 0u);
}

TEST(DistributedExecutorTest, BitIdenticalToSerialSingleWorkerFourShards) {
  ExpectDistributedMatchesSerial(4, SamplerMode::kSparse,
                                 std::vector<dist::WorkerHooks>(1));
}

TEST(DistributedExecutorTest, BitIdenticalToSerialDenseSampler) {
  ExpectDistributedMatchesSerial(3, SamplerMode::kDense,
                                 std::vector<dist::WorkerHooks>(2));
}

// A worker dies (closes its socket) mid-sweep after finishing one shard;
// the coordinator re-dispatches its pending shards — with their original
// RNG stream states — to the survivor, and the final model stays
// bit-identical to serial.
TEST(DistributedExecutorTest, WorkerDeathMidSweepIsBitIdentical) {
  std::vector<dist::WorkerHooks> hooks(2);
  hooks[1].fail_after_shards = 1;
  const TrainStats stats =
      ExpectDistributedMatchesSerial(4, SamplerMode::kSparse, std::move(hooks));
  EXPECT_EQ(stats.dist_workers_lost, 1);
  EXPECT_GE(stats.dist_shards_redispatched, 1);
}

// A worker goes silent instead of disconnecting: the per-sweep deadline
// declares it dead and re-dispatches; the result is still bit-identical.
TEST(DistributedExecutorTest, HungWorkerIsTimedOutAndRedispatched) {
  std::vector<dist::WorkerHooks> hooks(2);
  hooks[1].fail_after_shards = 0;
  hooks[1].hang_instead = true;
  const TrainStats stats = ExpectDistributedMatchesSerial(
      4, SamplerMode::kSparse, std::move(hooks), /*sweep_deadline_ms=*/300);
  EXPECT_EQ(stats.dist_workers_lost, 1);
  EXPECT_GE(stats.dist_shards_redispatched, 1);
}

// When every worker is gone, training fails with Unavailable instead of
// hanging or crashing.
TEST(DistributedExecutorTest, AllWorkersLostFailsCleanly) {
  const SynthResult data = testing::MakeTinyGraph(42);
  CpdConfig config = BaseConfig();
  config.num_shards = 4;

  WorkerFleet fleet;
  {
    std::vector<dist::WorkerHooks> hooks(2);
    hooks[0].fail_after_shards = 0;
    hooks[1].fail_after_shards = 0;
    EmTrainer dist(data.graph, config);
    dist.SetExecutorFactoryForTest(SocketpairFactory(&fleet, std::move(hooks)));
    const Status status = dist.Train();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  }
}

// A peer that does not echo the Hello byte-for-byte (protocol or model
// dimension mismatch) is rejected during the handshake.
TEST(DistributedExecutorTest, HandshakeEchoMismatchIsRejected) {
  const SynthResult data = testing::MakeTinyGraph(42);
  CpdConfig config = BaseConfig();
  config.num_shards = 2;

  WorkerFleet fleet;
  {
    EmTrainer dist(data.graph, config);
    dist.SetExecutorFactoryForTest(
        [&fleet](const SocialGraph& graph, const CpdConfig& cfg,
                 const LinkCaches& caches,
                 ThreadPlan plan) -> StatusOr<std::unique_ptr<ShardExecutor>> {
          int fds[2];
          if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
            return Status::Unavailable("socketpair failed");
          }
          // An impostor worker: acks the Hello with one flipped byte, as a
          // build with different model dimensions would.
          fleet.threads.emplace_back([fd = fds[1]] {
            auto frame = dist::RecvFrame(fd);
            if (frame.ok()) {
              std::string body = frame->body;
              body.back() ^= 1;
              (void)dist::SendFrame(fd, dist::MsgType::kHelloAck, body);
            }
            char sink[64];
            while (::recv(fd, sink, sizeof(sink), 0) > 0) {
            }
            ::close(fd);
          });
          dist::DistributedOptions options;
          options.connected_fds.push_back(fds[0]);
          return dist::MakeDistributedExecutor(graph, cfg, caches,
                                               std::move(plan),
                                               std::move(options));
        });
    const Status status = dist.Train();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
}

// End to end over real processes: cpd_train's production path
// (ExecutorMode::kDistributed + dist_workers) spawns cpd_worker binaries on
// loopback and still reproduces the serial model bit-for-bit.
TEST(DistributedExecutorE2ETest, SpawnedWorkerProcessesBitIdentical) {
  const std::string worker = CurrentExecutableDir() + "/cpd_worker";
  if (::access(worker.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "cpd_worker binary not built next to the test binary";
  }
  const SynthResult data = testing::MakeTinyGraph(42);

  CpdConfig serial_config = BaseConfig();
  serial_config.num_shards = 3;
  serial_config.executor_mode = ExecutorMode::kSerial;
  EmTrainer serial(data.graph, serial_config);
  ASSERT_TRUE(serial.Train().ok());

  CpdConfig dist_config = serial_config;
  dist_config.executor_mode = ExecutorMode::kDistributed;
  dist_config.dist_workers = 2;
  dist_config.dist_worker_binary = worker;
  EmTrainer dist(data.graph, dist_config);
  const Status status = dist.Train();
  ASSERT_TRUE(status.ok()) << status.ToString();

  ExpectSameModel(serial.state(), dist.state());
  EXPECT_EQ(dist.stats().dist_workers_connected, 2);
}

// ----- cpd_train distributed-flag validation (exit 2 + usage) -----

class CpdTrainFlagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    binary_ = CurrentExecutableDir() + "/cpd_train";
    if (::access(binary_.c_str(), X_OK) != 0) {
      GTEST_SKIP() << "cpd_train binary not built next to the test binary";
    }
    const std::string dir = ::testing::TempDir();
    docs_ = dir + "/dist_flags_docs.tsv";
    friends_ = dir + "/dist_flags_friends.tsv";
    diffusion_ = dir + "/dist_flags_diffusion.tsv";
    std::ofstream(docs_) << "0\t0\talpha beta gamma delta\n"
                         << "1\t1\tbeta gamma delta epsilon\n";
    std::ofstream(friends_) << "0\t1\n";
    std::ofstream(diffusion_) << "";
  }

  int Run(const std::string& extra_flags) {
    const std::string cmd = binary_ + " --users 2 --docs " + docs_ +
                            " --friends " + friends_ + " --diffusion " +
                            diffusion_ + " " + extra_flags +
                            " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  std::string binary_, docs_, friends_, diffusion_;
};

TEST_F(CpdTrainFlagsTest, UnknownExecutorNameIsUsageError) {
  EXPECT_EQ(Run("--executor bogus"), 2);
}

TEST_F(CpdTrainFlagsTest, DistributedWithoutWorkersIsUsageError) {
  EXPECT_EQ(Run("--executor distributed"), 2);
}

TEST_F(CpdTrainFlagsTest, WorkersAndWorkerAddrsConflict) {
  EXPECT_EQ(Run("--executor distributed --workers 2 "
                "--worker_addrs 127.0.0.1:19999"),
            2);
}

TEST_F(CpdTrainFlagsTest, WorkersWithoutDistributedExecutorIsUsageError) {
  EXPECT_EQ(Run("--workers 2"), 2);
  EXPECT_EQ(Run("--executor pooled --worker_addrs 127.0.0.1:19999"), 2);
}

}  // namespace
}  // namespace cpd
