// The distributed E-step wire codec (src/dist/wire.h): binary round-trips
// for every message, and the corruption taxonomy mirroring the .cpdb model
// artifact — bad magic / foreign endianness / unknown type are
// InvalidArgument, a newer version is Unimplemented, truncation and trailing
// bytes are OutOfRange.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/model_state.h"
#include "core/state_snapshot.h"
#include "dist/wire.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/wire_format.h"

namespace cpd::dist {
namespace {

CpdConfig TestConfig() {
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.seed = 9;
  return config;
}

std::string FramedHello() {
  HelloMsg hello;
  hello.num_communities = 4;
  hello.num_topics = 6;
  hello.num_users = 60;
  hello.num_documents = 240;
  hello.vocab_size = 300;
  hello.num_shards = 3;
  hello.seed = 9;
  std::string out;
  AppendFrame(&out, MsgType::kHello, hello.Encode());
  return out;
}

TEST(DistFrameTest, RoundTrips) {
  const std::string body = "payload bytes \x00\x01\x02";
  std::string framed;
  AppendFrame(&framed, MsgType::kSweepBegin, body);
  ASSERT_EQ(framed.size(), kFrameHeaderBytes + body.size());

  auto frame = DecodeFrame(framed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, MsgType::kSweepBegin);
  EXPECT_EQ(frame->body, body);
}

TEST(DistFrameTest, EmptyBodyRoundTrips) {
  std::string framed;
  AppendFrame(&framed, MsgType::kShutdown, "");
  auto frame = DecodeFrame(framed);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, MsgType::kShutdown);
  EXPECT_TRUE(frame->body.empty());
}

TEST(DistFrameTest, BadMagicIsInvalidArgument) {
  std::string framed = FramedHello();
  framed[0] = 'X';
  const auto frame = DecodeFrame(framed);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistFrameTest, NewerVersionIsUnimplemented) {
  // A frame forged from a (hypothetical) newer build must be rejected as
  // Unimplemented, exactly like a newer .cpdb artifact.
  std::string framed;
  AppendFrame(&framed, MsgType::kHello, "body", kWireVersion + 1);
  const auto frame = DecodeFrame(framed);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnimplemented);
}

TEST(DistFrameTest, VersionZeroIsInvalidArgument) {
  std::string framed;
  AppendFrame(&framed, MsgType::kHello, "body", 0);
  const auto frame = DecodeFrame(framed);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistFrameTest, ForeignEndiannessIsInvalidArgument) {
  std::string framed = FramedHello();
  // The endian tag occupies bytes [12, 16); byte-swap it.
  std::swap(framed[12], framed[15]);
  std::swap(framed[13], framed[14]);
  const auto frame = DecodeFrame(framed);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistFrameTest, UnknownMessageTypeIsInvalidArgument) {
  std::string framed;
  AppendFrame(&framed, static_cast<MsgType>(42), "body");
  const auto frame = DecodeFrame(framed);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistFrameTest, TruncationIsOutOfRange) {
  const std::string framed = FramedHello();
  // Every strict prefix fails, and always as OutOfRange (truncated header)
  // or OutOfRange (truncated body) — never a crash or a false success.
  for (size_t keep = 0; keep < framed.size(); ++keep) {
    const auto frame = DecodeFrame(framed.substr(0, keep));
    ASSERT_FALSE(frame.ok()) << "prefix of " << keep << " bytes decoded";
    EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange) << keep;
  }
}

TEST(DistFrameTest, TrailingBytesAreOutOfRange) {
  std::string framed = FramedHello();
  framed += "junk";
  const auto frame = DecodeFrame(framed);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange);
}

TEST(DistHelloTest, RoundTrips) {
  HelloMsg hello;
  hello.num_communities = 7;
  hello.num_topics = 11;
  hello.num_users = 1234;
  hello.num_documents = 5678;
  hello.vocab_size = 90;
  hello.num_shards = 5;
  hello.seed = 0xDEADBEEFu;
  const auto decoded = HelloMsg::Decode(hello.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded == hello);
}

TEST(DistHelloTest, TruncationIsOutOfRange) {
  const std::string body = HelloMsg{}.Encode();
  const auto decoded = HelloMsg::Decode(body.substr(0, body.size() - 3));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST(DistRngStateTest, RoundTripContinuesTheStream) {
  Rng original(321);
  for (int i = 0; i < 17; ++i) original.NextUint64(1000);
  (void)original.NextGaussian();  // May park a cached spare.

  std::string bytes;
  WireWriter writer(&bytes);
  EncodeRngState(original.SaveState(), &writer);
  WireReader reader(bytes);
  Rng restored(1);
  restored.LoadState(DecodeRngState(&reader));
  ASSERT_TRUE(reader.ExpectDone().ok());

  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(original.NextUint64(1u << 30), restored.NextUint64(1u << 30));
  }
  EXPECT_EQ(original.NextGaussian(), restored.NextGaussian());
}

TEST(DistGraphTest, RoundTripsStructure) {
  const SynthResult data = cpd::testing::MakeTinyGraph(41);
  const SocialGraph& graph = data.graph;

  std::string bytes;
  WireWriter writer(&bytes);
  EncodeGraph(graph, &writer);
  WireReader reader(bytes);
  auto decoded = DecodeGraph(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(reader.ExpectDone().ok());

  EXPECT_EQ(decoded->num_users(), graph.num_users());
  EXPECT_EQ(decoded->num_documents(), graph.num_documents());
  EXPECT_EQ(decoded->vocabulary_size(), graph.vocabulary_size());
  EXPECT_EQ(decoded->num_friendship_links(), graph.num_friendship_links());
  EXPECT_EQ(decoded->num_diffusion_links(), graph.num_diffusion_links());
  for (size_t d = 0; d < graph.num_documents(); ++d) {
    const Document& a = graph.document(static_cast<DocId>(d));
    const Document& b = decoded->document(static_cast<DocId>(d));
    ASSERT_EQ(a.user, b.user);
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.words, b.words);
  }
  EXPECT_EQ(decoded->friendship_links(), graph.friendship_links());
  EXPECT_EQ(decoded->diffusion_links(), graph.diffusion_links());
}

TEST(DistGraphTest, TruncationIsOutOfRange) {
  const SynthResult data = cpd::testing::MakeTinyGraph(42);
  std::string bytes;
  WireWriter writer(&bytes);
  EncodeGraph(data.graph, &writer);
  WireReader reader(std::string_view(bytes).substr(0, bytes.size() / 2));
  const auto decoded = DecodeGraph(&reader);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST(DistSetupTest, RoundTrips) {
  const SynthResult data = cpd::testing::MakeTinyGraph(43);
  const CpdConfig config = TestConfig();
  std::vector<std::vector<UserId>> shards(3);
  for (size_t u = 0; u < data.graph.num_users(); ++u) {
    shards[u % 3].push_back(static_cast<UserId>(u));
  }

  const std::string body = SetupMsg::Encode(config, data.graph, shards);
  auto setup = SetupMsg::Decode(body);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  EXPECT_EQ(setup->config.num_communities, config.num_communities);
  EXPECT_EQ(setup->config.num_topics, config.num_topics);
  EXPECT_EQ(setup->config.seed, config.seed);
  // Workers always run their shard serially, whatever the coordinator runs.
  EXPECT_EQ(setup->config.executor_mode, ExecutorMode::kSerial);
  EXPECT_EQ(setup->config.num_threads, 1);
  EXPECT_EQ(setup->graph.num_documents(), data.graph.num_documents());
  EXPECT_EQ(setup->shard_users, shards);
}

TEST(DistSweepBeginTest, RoundTripsSnapshotAndParameters) {
  const SynthResult data = cpd::testing::MakeTinyGraph(44);
  const CpdConfig config = TestConfig();
  ModelState state(data.graph, config);
  Rng rng(5);
  state.InitializeRandom(data.graph, &rng);
  state.RebuildCounts(data.graph);
  StateSnapshot snapshot;
  snapshot.CaptureFrom(state);

  KernelFlags flags;
  flags.freeze_communities = true;
  flags.community_uses_diffusion = false;

  const std::string body =
      SweepBeginMsg::Encode(12, flags, snapshot, /*include_parameters=*/true);
  StateSnapshot received;
  auto msg = SweepBeginMsg::Decode(body, &received);
  ASSERT_TRUE(msg.ok()) << msg.status().ToString();
  EXPECT_EQ(msg->sweep, 12u);
  EXPECT_TRUE(msg->has_parameters);
  EXPECT_TRUE(msg->flags.freeze_communities);
  EXPECT_TRUE(msg->flags.community_uses_content);
  EXPECT_FALSE(msg->flags.community_uses_diffusion);

  ASSERT_TRUE(received.captured());
  EXPECT_EQ(received.n_cz(), snapshot.n_cz());
  EXPECT_EQ(received.n_zw(), snapshot.n_zw());
  for (size_t d = 0; d < data.graph.num_documents(); ++d) {
    ASSERT_EQ(received.TopicOf(static_cast<DocId>(d)),
              snapshot.TopicOf(static_cast<DocId>(d)));
    ASSERT_EQ(received.CommunityOf(static_cast<DocId>(d)),
              snapshot.CommunityOf(static_cast<DocId>(d)));
  }

  // Restoring from the received snapshot must reproduce the sender's state.
  ModelState restored(data.graph, config);
  received.RestoreTo(&restored);
  EXPECT_EQ(restored.n_uc, state.n_uc);
  EXPECT_EQ(restored.n_zw, state.n_zw);
  EXPECT_EQ(restored.eta, state.eta);

  // Without parameters, only the sweep-state half ships.
  StateSnapshot sweep_only;
  auto msg2 = SweepBeginMsg::Decode(
      SweepBeginMsg::Encode(13, flags, snapshot, /*include_parameters=*/false),
      &sweep_only);
  ASSERT_TRUE(msg2.ok());
  EXPECT_FALSE(msg2->has_parameters);
}

TEST(DistShardResultTest, RoundTripsDeltaAndStats) {
  const SynthResult data = cpd::testing::MakeTinyGraph(45);
  const CpdConfig config = TestConfig();
  ModelState state(data.graph, config);
  Rng rng(6);
  state.InitializeRandom(data.graph, &rng);
  state.RebuildCounts(data.graph);

  CounterDelta delta;
  for (size_t d = 0; d < data.graph.num_documents() / 2; ++d) {
    const DocId doc = static_cast<DocId>(d);
    delta.RecordMove(data.graph.document(doc), doc, state.doc_community[d],
                     state.doc_topic[d],
                     (state.doc_community[d] + 1) % config.num_communities,
                     (state.doc_topic[d] + 1) % config.num_topics,
                     config.num_communities, config.num_topics,
                     data.graph.vocabulary_size());
  }

  ShardResultMsg msg;
  msg.sweep = 3;
  msg.shard = 2;
  Rng stream(7);
  stream.NextUint64(100);
  msg.rng = stream.SaveState();
  msg.shard_seconds = 0.25;
  msg.mh.topic_proposals = 40;
  msg.mh.topic_accepts = 13;
  msg.mh.community_proposals = 21;
  msg.mh.community_accepts = 8;
  msg.collapse.hits = 5;
  msg.collapse.misses = 9;

  CounterDelta received;
  auto decoded = ShardResultMsg::Decode(msg.Encode(delta), &received);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sweep, 3u);
  EXPECT_EQ(decoded->shard, 2u);
  EXPECT_EQ(decoded->shard_seconds, 0.25);
  EXPECT_EQ(decoded->mh.topic_accepts, 13);
  EXPECT_EQ(decoded->mh.community_proposals, 21);
  EXPECT_EQ(decoded->collapse.hits, 5);
  EXPECT_EQ(decoded->collapse.misses, 9);

  Rng replay(1);
  replay.LoadState(decoded->rng);
  EXPECT_EQ(replay.NextUint64(1u << 20), stream.NextUint64(1u << 20));

  // The decoded delta must act on a state identically to the original.
  ModelState a = state, b = state;
  delta.ApplyTo(&a);
  received.ApplyTo(&b);
  EXPECT_EQ(a.doc_topic, b.doc_topic);
  EXPECT_EQ(a.doc_community, b.doc_community);
  EXPECT_EQ(a.n_uc, b.n_uc);
  EXPECT_EQ(a.n_cz, b.n_cz);
  EXPECT_EQ(a.n_zw, b.n_zw);
  EXPECT_EQ(a.n_c, b.n_c);
  EXPECT_EQ(a.n_z, b.n_z);
}

TEST(DistShardResultTest, TruncationIsOutOfRange) {
  ShardResultMsg msg;
  CounterDelta delta;
  const std::string body = msg.Encode(delta);
  CounterDelta sink;
  const auto decoded =
      ShardResultMsg::Decode(body.substr(0, body.size() - 5), &sink);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST(DistErrorBodyTest, RoundTrips) {
  const auto decoded = DecodeErrorBody(EncodeErrorBody("shard 3 exploded"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "shard 3 exploded");
}

}  // namespace
}  // namespace cpd::dist
