#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sampling/distributions.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace cpd {
namespace {

class GammaMomentTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaMomentTest, MeanAndVarianceMatch) {
  const double shape = GetParam();
  Rng rng(static_cast<uint64_t>(shape * 100.0) + 5);
  const int n = 150000;
  std::vector<double> samples(n);
  for (double& s : samples) s = SampleGamma(shape, &rng);
  // Gamma(shape, 1): mean = shape, var = shape.
  EXPECT_NEAR(Mean(samples), shape, 5.0 * std::sqrt(shape / n) + 0.01);
  EXPECT_NEAR(Variance(samples), shape, 0.08 * shape + 0.01);
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, GammaMomentTest,
                         ::testing::Values(0.05, 0.3, 0.9, 1.0, 2.5, 10.0));

TEST(GammaTest, ScaleParameter) {
  Rng rng(42);
  const int n = 100000;
  std::vector<double> samples(n);
  for (double& s : samples) s = SampleGamma(2.0, 3.0, &rng);
  EXPECT_NEAR(Mean(samples), 6.0, 0.1);
}

TEST(BetaTest, Moments) {
  Rng rng(43);
  const int n = 100000;
  std::vector<double> samples(n);
  for (double& s : samples) s = SampleBeta(2.0, 5.0, &rng);
  EXPECT_NEAR(Mean(samples), 2.0 / 7.0, 0.01);
  for (double s : samples) {
    ASSERT_GT(s, 0.0);
    ASSERT_LT(s, 1.0);
  }
}

TEST(DirichletTest, SymmetricDrawSumsToOne) {
  Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = SampleSymmetricDirichlet(5, 0.1, &rng);
    double total = 0.0;
    for (double x : sample) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DirichletTest, ConcentrationControlsSparsity) {
  Rng rng(45);
  // Low alpha -> most mass on one coordinate; high alpha -> near uniform.
  double sparse_max = 0.0, dense_max = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const auto sparse = SampleSymmetricDirichlet(10, 0.02, &rng);
    const auto dense = SampleSymmetricDirichlet(10, 50.0, &rng);
    sparse_max += *std::max_element(sparse.begin(), sparse.end());
    dense_max += *std::max_element(dense.begin(), dense.end());
  }
  EXPECT_GT(sparse_max / trials, 0.8);
  EXPECT_LT(dense_max / trials, 0.2);
}

TEST(DirichletTest, AsymmetricMeansFollowAlpha) {
  Rng rng(46);
  const std::vector<double> alpha = {1.0, 2.0, 7.0};
  std::vector<double> mean(3, 0.0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const auto sample = SampleDirichlet(alpha, &rng);
    for (size_t k = 0; k < 3; ++k) mean[k] += sample[k];
  }
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(mean[k] / trials, alpha[k] / 10.0, 0.01);
  }
}

TEST(CategoricalTest, FollowsWeights) {
  Rng rng(47);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[SampleCategorical(weights, &rng)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 40000.0, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 40000.0, 0.75, 0.01);
}

TEST(CategoricalFromLogTest, MatchesLinearSampling) {
  Rng rng(48);
  // log weights with big offsets must behave like the normalized weights.
  const std::vector<double> log_weights = {-1000.0 + std::log(0.2),
                                           -1000.0 + std::log(0.8)};
  int ones = 0;
  for (int i = 0; i < 40000; ++i) {
    ones += SampleCategoricalFromLog(log_weights, &rng) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / 40000.0, 0.8, 0.01);
}

TEST(CategoricalFromLogTest, SingleCandidate) {
  Rng rng(49);
  const std::vector<double> lw = {-5.0};
  EXPECT_EQ(SampleCategoricalFromLog(lw, &rng), 0u);
}

}  // namespace
}  // namespace cpd
