#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/math_util.h"

namespace cpd {
namespace {

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 - Sigmoid(2.0), 1e-12);
}

TEST(SigmoidTest, ExtremeInputsDoNotOverflow) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(Log1pExpTest, MatchesDirectComputation) {
  for (double x : {-30.0, -1.0, 0.0, 1.0, 30.0}) {
    EXPECT_NEAR(Log1pExp(x), std::log1p(std::exp(std::min(x, 700.0))), 1e-9)
        << "x=" << x;
  }
  // Large x: log(1+e^x) ~ x.
  EXPECT_NEAR(Log1pExp(800.0), 800.0, 1e-9);
}

TEST(LogSumExpTest, StableForLargeMagnitudes) {
  std::vector<double> values = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(values), 1000.0 + std::log(2.0), 1e-9);
  std::vector<double> tiny = {-1000.0, -1001.0};
  EXPECT_NEAR(LogSumExp(tiny), -1000.0 + std::log(1.0 + std::exp(-1.0)), 1e-9);
}

TEST(LogSumExpTest, EmptyIsNegativeInfinity) {
  EXPECT_TRUE(std::isinf(LogSumExp({})));
}

TEST(SoftmaxTest, SumsToOne) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(NormalizeTest, UniformFallbackOnZeroSum) {
  std::vector<double> v = {0.0, 0.0, 0.0, 0.0};
  NormalizeInPlace(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(NormalizeTest, ProportionsPreserved) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeInPlace(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{3.0}), 0.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSideIsZero) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> c = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(FitLineTest, ExactLine) {
  std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineHasHighR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(ArgMaxTest, FindsMaximum) {
  std::vector<double> v = {1.0, 5.0, 3.0};
  EXPECT_EQ(ArgMax(v), 1u);
}

TEST(TopKTest, OrderedAndClamped) {
  std::vector<double> v = {0.1, 0.9, 0.5, 0.7};
  const auto top2 = TopKIndices(v, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1u);
  EXPECT_EQ(top2[1], 3u);
  EXPECT_EQ(TopKIndices(v, 100).size(), 4u);
}

TEST(TopKTest, TieBreaksByIndex) {
  std::vector<double> v = {0.5, 0.5, 0.5};
  const auto top = TopKIndices(v, 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(StableSumTest, CompensatesSmallTerms) {
  std::vector<double> v(1000000, 1e-10);
  v.push_back(1.0);
  EXPECT_NEAR(StableSum(v), 1.0 + 1e-4, 1e-12);
}

}  // namespace
}  // namespace cpd
