// Unit tests of the src/obs metrics + tracing subsystem: histogram
// percentile error bounds against exact quantiles, concurrent-writer
// merges (run under TSan in CI), Prometheus exposition escaping edge
// cases, and trace-event JSON well-formedness under the injectable clock.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace cpd::obs {
namespace {

// ---------------------------------------------------------------- histogram

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  return values[rank - 1];
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentilesWithinLogBucketErrorBound) {
  // Bounds grow by 1.1 per bucket, representatives are geometric midpoints,
  // so any reconstructed percentile is within sqrt(1.1)-1 (< 5%) of an
  // exact in-bucket quantile. Use a deterministic pseudo-random spread
  // across four decades to exercise many buckets.
  Histogram h;
  std::vector<double> values;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double unit = static_cast<double>(state >> 11) /
                        static_cast<double>(1ull << 53);
    const double value = std::pow(10.0, 1.0 + 4.0 * unit);  // 10us..100ms
    values.push_back(value);
    h.Record(value);
  }
  const Histogram::Snapshot snap = h.Snap();
  ASSERT_EQ(snap.count, values.size());
  const double tolerance = std::sqrt(1.1) - 1.0 + 1e-9;
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = ExactQuantile(values, q);
    const double approx = snap.Percentile(q);
    EXPECT_NEAR(approx / exact, 1.0, tolerance)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(HistogramTest, SubMicrosecondValuesReportNonzeroPercentile) {
  // Bucket 0's representative is bounds[0]/2, so a burst of ~0us
  // observations (frozen clock) still yields a positive p50.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(0.0);
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 10u);
  EXPECT_GT(snap.Percentile(0.5), 0.0);
  EXPECT_LE(snap.Percentile(0.5), 1.0);
}

TEST(HistogramTest, SumAndOverflowBucket) {
  Histogram h;
  h.Record(120e6);  // Above the last bound -> +Inf bucket.
  h.Record(5.0);
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.sum, 120e6 + 5.0);
  EXPECT_EQ(snap.buckets.back(), 1u);
  // The +Inf representative is the last finite bound.
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0),
                   Histogram::LatencyBoundsUs().back());
}

TEST(HistogramTest, ConcurrentWritersMergeExactCounts) {
  // Four threads hammer the same histogram; the striped shards must merge
  // to the exact total without losing observations. TSan covers the
  // data-race side of this in CI.
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>(1 + (t * kPerThread + i) % 1000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (const uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("cpd_test_total", "test counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < 100000; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), 400000u);
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistryTest, HandlesAreStableAndIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("cpd_x_total", "x", {{"model", "m"}});
  Counter* b = registry.GetCounter("cpd_x_total", "x", {{"model", "m"}});
  Counter* c = registry.GetCounter("cpd_x_total", "x", {{"model", "n"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Increment(3);
  c->Increment(4);
  EXPECT_EQ(registry.CounterTotal("cpd_x_total"), 7u);
  const auto by_label = registry.CounterByLabel("cpd_x_total");
  ASSERT_EQ(by_label.size(), 2u);
  EXPECT_EQ(by_label.at("m"), 3u);
  EXPECT_EQ(by_label.at("n"), 4u);
}

TEST(MetricsRegistryTest, FamilyNamesSorted) {
  MetricsRegistry registry;
  registry.GetCounter("cpd_b_total", "b");
  registry.GetGauge("cpd_a_gauge", "a");
  registry.GetHistogram("cpd_c_us", "c");
  const std::vector<std::string> names = registry.FamilyNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "cpd_a_gauge");
  EXPECT_EQ(names[1], "cpd_b_total");
  EXPECT_EQ(names[2], "cpd_c_us");
}

// --------------------------------------------------------------- exposition

TEST(ExpositionTest, EscapesLabelValuesAndHelp) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(EscapeHelpText("help\nwith \\ and \"quotes\""),
            "help\\nwith \\\\ and \"quotes\"");
}

TEST(ExpositionTest, RendersEscapedChildren) {
  MetricsRegistry registry;
  registry
      .GetCounter("cpd_weird_total", "weird\nhelp",
                  {{"model", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# HELP cpd_weird_total weird\\nhelp"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cpd_weird_total counter"), std::string::npos);
  EXPECT_NE(text.find("cpd_weird_total{model=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(ExpositionTest, HistogramExpositionIsCumulativeWithInf) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("cpd_lat_us", "latency");
  h->Record(2.0);
  h->Record(2.0);
  h->Record(1e9);
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# TYPE cpd_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("cpd_lat_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("cpd_lat_us_count 3"), std::string::npos);
  // Cumulative counts never decrease across bucket lines.
  uint64_t last = 0;
  size_t pos = 0;
  int lines = 0;
  while ((pos = text.find("cpd_lat_us_bucket{le=", pos)) !=
         std::string::npos) {
    const size_t space = text.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    const uint64_t value =
        std::stoull(text.substr(space + 2, text.find('\n', space) - space - 2));
    EXPECT_GE(value, last);
    last = value;
    ++lines;
    pos = space;
  }
  EXPECT_GT(lines, 10);
}

TEST(ExpositionTest, DeterministicBytes) {
  MetricsRegistry registry;
  registry.GetCounter("cpd_z_total", "z")->Increment(5);
  registry.GetGauge("cpd_g", "g")->Set(2.5);
  EXPECT_EQ(registry.ExpositionText(), registry.ExpositionText());
}

// -------------------------------------------------------------------- trace

int64_t g_fake_now_us = 0;
int64_t FakeClock() { return g_fake_now_us; }

std::string StringField(const Json& object, const char* key) {
  auto value = object.GetString(key, "");
  return value.ok() ? *value : std::string();
}

double NumberField(const Json& object, const char* key) {
  auto value = object.GetNumber(key);
  return value.ok() ? *value : -1.0;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake_now_us = 1000;
    SetClockForTest(&FakeClock);
  }
  void TearDown() override { SetClockForTest(nullptr); }
};

TEST_F(TraceTest, SpansRecordUnderInjectedClock) {
  TraceRecorder recorder;
  recorder.SetThreadName(0, "trainer");
  {
    TraceSpan span(&recorder, "sweep", 0);
    span.AddArg("index", Json(int64_t{7}));
    g_fake_now_us += 250;
  }
  {
    TraceSpan span(&recorder, "merge", 0);
    g_fake_now_us += 50;
  }
  EXPECT_EQ(recorder.num_events(), 2u);

  auto parsed = Json::Parse(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata first, then the spans in recording order with monotonically
  // non-decreasing timestamps.
  ASSERT_EQ(events->size(), 3u);
  const Json& meta = (*events)[0];
  EXPECT_EQ(StringField(meta, "ph"), "M");
  EXPECT_EQ(StringField(meta, "name"), "thread_name");
  int64_t last_ts = -1;
  for (size_t i = 1; i < events->size(); ++i) {
    const Json& ev = (*events)[i];
    EXPECT_EQ(StringField(ev, "ph"), "X");
    const double ts = NumberField(ev, "ts");
    const double dur = NumberField(ev, "dur");
    EXPECT_GE(static_cast<int64_t>(ts), last_ts);
    EXPECT_GE(dur, 0.0);
    last_ts = static_cast<int64_t>(ts);
  }
  const Json& sweep = (*events)[1];
  EXPECT_EQ(StringField(sweep, "name"), "sweep");
  EXPECT_DOUBLE_EQ(NumberField(sweep, "ts"), 1000.0);
  EXPECT_DOUBLE_EQ(NumberField(sweep, "dur"), 250.0);
  const Json* args = sweep.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(NumberField(*args, "index"), 7.0);
}

TEST_F(TraceTest, NullRecorderIsNoOp) {
  TraceSpan span(nullptr, "ignored", 0);
  span.AddArg("k", Json(1));
  // Destruction must not crash; nothing to assert beyond that.
}

TEST_F(TraceTest, AddSpanDirectAndWorkerRows) {
  TraceRecorder recorder;
  recorder.SetThreadName(100, "worker 0");
  recorder.SetThreadName(101, "worker 1");
  Json args = Json::MakeObject();
  args.Set("shard", Json(3));
  recorder.AddSpan("shard 3", 101, 2000, 500, std::move(args));
  auto parsed = Json::Parse(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 3u);  // 2 metadata + 1 span.
  const Json& span = (*events)[2];
  EXPECT_DOUBLE_EQ(NumberField(span, "tid"), 101.0);
  EXPECT_DOUBLE_EQ(NumberField(span, "ts"), 2000.0);
  EXPECT_DOUBLE_EQ(NumberField(span, "dur"), 500.0);
}

TEST(ClockTest, RealClockIsMonotonicNonDecreasing) {
  const int64_t a = NowMicros();
  const int64_t b = NowMicros();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace cpd::obs
