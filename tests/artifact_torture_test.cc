// Artifact torture suite: every way a ".cpdb" (v1/v2/v3) or ".cpdd" delta
// file can be damaged on disk must surface as a *typed* error — never a
// crash, never an over-allocation sized by a forged header, never a silent
// mis-load. Both decode paths are driven for every corruption: the heap
// codec (DecodeModelArtifact / DecodeModelDelta) and, for v3, the zero-copy
// loader (MappedModelArtifact::Open on a real temp file). The corruption
// taxonomy mirrors dist_wire_test: bad magic / foreign endianness /
// corrupt header fields are InvalidArgument, a newer version is
// Unimplemented, truncation and out-of-bounds sections are OutOfRange, and
// mapping a pre-v3 artifact is FailedPrecondition.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "core/model_delta.h"
#include "core/model_state.h"
#include "util/file_util.h"

namespace cpd {
namespace {

// ----- byte-surgery helpers -----

template <typename T>
T ReadLE(const std::string& bytes, size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

template <typename T>
void WriteLE(std::string* bytes, size_t offset, T value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

// v3 fixed-header geometry (model_artifact.h wire spec).
constexpr size_t kFixedHeader = 76;
constexpr size_t kTableEntry = 24;
constexpr size_t kChecksumOffset = 64;
constexpr size_t kSectionCountOffset = 56;

// FNV-1a 32 over the fixed header + section table with the checksum field
// read as zero — the reference implementation the codec must match.
uint32_t V3HeaderChecksum(const std::string& bytes) {
  const uint32_t count = ReadLE<uint32_t>(bytes, kSectionCountOffset);
  // Clamped for forged section counts: the parser rejects a table that
  // does not fit before it ever verifies the checksum.
  const size_t end =
      std::min(bytes.size(), kFixedHeader + kTableEntry * size_t{count});
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < end; ++i) {
    const bool in_hole = i >= kChecksumOffset && i < kChecksumOffset + 4;
    const uint8_t byte =
        in_hole ? 0 : static_cast<uint8_t>(bytes[i]);
    hash = (hash ^ byte) * 16777619u;
  }
  return hash;
}

/// Re-stamps the checksum after a deliberate header edit, so the test
/// reaches the *deeper* validation the edit targets.
void FixV3Checksum(std::string* bytes) {
  WriteLE<uint32_t>(bytes, kChecksumOffset, V3HeaderChecksum(*bytes));
}

// A fabricated-but-valid artifact: small dims, deterministic values,
// optionally a bundled vocabulary. Validate() checks shapes only, so any
// bit pattern exercises the codec.
ModelArtifact MakeArtifact(bool with_vocab) {
  ModelArtifact artifact;
  artifact.num_communities = 4;
  artifact.num_topics = 3;
  artifact.num_users = 7;
  artifact.vocab_size = 5;
  artifact.num_time_bins = 2;
  artifact.generation = 11;
  auto fill = [](std::vector<double>* v, size_t n, double scale) {
    v->resize(n);
    for (size_t i = 0; i < n; ++i) (*v)[i] = scale / (1.0 + i);
  };
  fill(&artifact.pi, 7 * 4, 1.0);
  fill(&artifact.theta, 4 * 3, 2.0);
  fill(&artifact.phi, 3 * 5, 3.0);
  fill(&artifact.eta, 4 * 4 * 3, 4.0);
  fill(&artifact.weights, static_cast<size_t>(kNumDiffusionWeights), 5.0);
  fill(&artifact.popularity, 2 * 3, 6.0);
  if (with_vocab) {
    artifact.vocab_words = {"alpha", "beta", "gamma", "delta", ""};
    artifact.vocab_frequencies = {9, 7, 5, 3, 1};
  }
  return artifact;
}

std::string EncodeV3(const ModelArtifact& artifact, uint32_t top_k = 2,
                     uint32_t alignment = 64) {
  ArtifactWriteOptions options;
  options.version = 3;
  options.derived_top_k = top_k;
  options.section_alignment = alignment;  // Small => compact torture files.
  auto bytes = EncodeModelArtifact(artifact, options);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return *bytes;
}

std::string EncodeLegacy(const ModelArtifact& artifact, uint32_t version) {
  ArtifactWriteOptions options;
  options.version = version;
  auto bytes = EncodeModelArtifact(artifact, options);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return *bytes;
}

bool IsTypedFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kIOError:
      return true;
    default:
      return false;
  }
}

class ArtifactTortureTest : public ::testing::Test {
 protected:
  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  /// mmap-opens `bytes` from a real file; the shared_ptr keeps the mapping
  /// alive for inspection.
  static StatusOr<std::shared_ptr<const MappedModelArtifact>> MmapOpen(
      const std::string& bytes, const std::string& name) {
    const std::string path = TempPath(name);
    const Status written = WriteStringToFile(path, bytes);
    EXPECT_TRUE(written.ok()) << written.ToString();
    return MappedModelArtifact::Open(path);
  }

  /// Asserts both decode paths reject `bytes` with a typed status.
  static void ExpectBothPathsReject(const std::string& bytes,
                                    const std::string& file_tag,
                                    const char* what) {
    const auto decoded = DecodeModelArtifact(bytes);
    ASSERT_FALSE(decoded.ok()) << what << ": heap decode accepted";
    EXPECT_TRUE(IsTypedFailure(decoded.status()))
        << what << ": untyped heap error " << decoded.status().ToString();
    const auto mapped = MmapOpen(bytes, file_tag);
    ASSERT_FALSE(mapped.ok()) << what << ": mmap open accepted";
    EXPECT_TRUE(IsTypedFailure(mapped.status()))
        << what << ": untyped mmap error " << mapped.status().ToString();
  }
};

// ----- every-prefix truncation -----

TEST_F(ArtifactTortureTest, EveryV3PrefixIsRejectedByBothPaths) {
  const std::string bytes = EncodeV3(MakeArtifact(/*with_vocab=*/true));
  ASSERT_GT(bytes.size(), kFixedHeader);
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    const std::string prefix = bytes.substr(0, keep);
    const auto decoded = DecodeModelArtifact(prefix);
    ASSERT_FALSE(decoded.ok()) << "prefix " << keep << " decoded";
    EXPECT_TRUE(IsTypedFailure(decoded.status()))
        << "prefix " << keep << ": " << decoded.status().ToString();
    const auto mapped = MmapOpen(prefix, "prefix_v3.cpdb");
    ASSERT_FALSE(mapped.ok()) << "prefix " << keep << " mapped";
    EXPECT_TRUE(IsTypedFailure(mapped.status()))
        << "prefix " << keep << ": " << mapped.status().ToString();
  }
}

TEST_F(ArtifactTortureTest, EveryLegacyPrefixIsRejected) {
  for (const uint32_t version : {1u, 2u}) {
    const std::string bytes =
        EncodeLegacy(MakeArtifact(/*with_vocab=*/version >= 2), version);
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      const auto decoded = DecodeModelArtifact(bytes.substr(0, keep));
      ASSERT_FALSE(decoded.ok())
          << "v" << version << " prefix " << keep << " decoded";
      EXPECT_TRUE(IsTypedFailure(decoded.status()))
          << "v" << version << " prefix " << keep << ": "
          << decoded.status().ToString();
    }
  }
}

TEST_F(ArtifactTortureTest, EveryDeltaPrefixIsRejected) {
  auto delta = BuildModelDelta(MakeArtifact(/*with_vocab=*/true), [] {
    ModelArtifact target = MakeArtifact(/*with_vocab=*/true);
    target.generation = 12;
    target.pi[3] += 0.25;
    return target;
  }());
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  auto bytes = EncodeModelDelta(*delta);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  for (size_t keep = 0; keep < bytes->size(); ++keep) {
    const auto decoded = DecodeModelDelta(bytes->substr(0, keep));
    ASSERT_FALSE(decoded.ok()) << "prefix " << keep << " decoded";
    EXPECT_TRUE(IsTypedFailure(decoded.status()))
        << "prefix " << keep << ": " << decoded.status().ToString();
  }
}

// ----- exhaustive single-bit header corruption -----

// FNV-1a over the header+table changes under any single-byte edit and every
// pre-checksum check is order-stable, so flipping each bit of the covered
// range without re-stamping the checksum must always be rejected.
TEST_F(ArtifactTortureTest, EveryHeaderBitFlipIsRejectedByBothPaths) {
  const std::string bytes = EncodeV3(MakeArtifact(/*with_vocab=*/true));
  const uint32_t count = ReadLE<uint32_t>(bytes, kSectionCountOffset);
  const size_t covered = kFixedHeader + kTableEntry * count;
  ASSERT_LE(covered, bytes.size());
  for (size_t byte = 0; byte < covered; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      SCOPED_TRACE(::testing::Message() << "byte " << byte << " bit " << bit);
      const auto decoded = DecodeModelArtifact(corrupt);
      ASSERT_FALSE(decoded.ok());
      EXPECT_TRUE(IsTypedFailure(decoded.status()))
          << decoded.status().ToString();
    }
  }
  // Spot-check the mmap loader agrees on a checksum-only flip (both paths
  // share ParseV3Layout; the exhaustive sweep above already proves the
  // shared validation).
  std::string corrupt = bytes;
  corrupt[kChecksumOffset] = static_cast<char>(corrupt[kChecksumOffset] ^ 1);
  const auto mapped = MmapOpen(corrupt, "bitflip_v3.cpdb");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mapped.status().message().find("checksum"), std::string::npos)
      << mapped.status().ToString();
}

TEST_F(ArtifactTortureTest, EveryDeltaHeaderBitFlipIsRejected) {
  ModelArtifact target = MakeArtifact(/*with_vocab=*/true);
  target.generation = 12;
  target.pi[0] += 0.5;
  auto delta = BuildModelDelta(MakeArtifact(/*with_vocab=*/true), target);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  auto bytes = EncodeModelDelta(*delta);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  constexpr size_t kDeltaHeader = 96;
  ASSERT_GE(bytes->size(), kDeltaHeader);
  for (size_t byte = 0; byte < kDeltaHeader; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = *bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      SCOPED_TRACE(::testing::Message() << "byte " << byte << " bit " << bit);
      const auto decoded = DecodeModelDelta(corrupt);
      ASSERT_FALSE(decoded.ok());
      EXPECT_TRUE(IsTypedFailure(decoded.status()))
          << decoded.status().ToString();
    }
  }
}

// ----- targeted header-field forgeries (checksum re-stamped) -----

TEST_F(ArtifactTortureTest, ForgedNewerVersionIsUnimplemented) {
  std::string bytes = EncodeV3(MakeArtifact(/*with_vocab=*/false));
  WriteLE<uint32_t>(&bytes, 8, kModelArtifactVersion + 1);
  FixV3Checksum(&bytes);
  const auto decoded = DecodeModelArtifact(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented);
  const auto mapped = MmapOpen(bytes, "newer.cpdb");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ArtifactTortureTest, ForeignEndianTagIsInvalidArgument) {
  std::string bytes = EncodeV3(MakeArtifact(/*with_vocab=*/false));
  WriteLE<uint32_t>(&bytes, 12, 0x04030201u);  // Byte-swapped tag.
  FixV3Checksum(&bytes);
  const auto decoded = DecodeModelArtifact(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("byte order"), std::string::npos);
  const auto mapped = MmapOpen(bytes, "endian.cpdb");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ArtifactTortureTest, ForgedDimensionsCannotSizeAllocations) {
  struct Forgery {
    size_t offset;
    uint64_t value;
    size_t width;  // 4 or 8.
    const char* what;
  };
  const Forgery forgeries[] = {
      {16, 0, 4, "zero communities"},
      {16, 0x80000000u, 4, "negative communities"},
      {20, 0, 4, "zero topics"},
      {24, ~0ull, 8, "absurd user count"},
      {32, ~0ull >> 1, 8, "absurd vocabulary"},
      {40, 0, 4, "zero time bins"},
      {44, 999, 8, "wrong diffusion weight count"},
      {52, 24, 4, "non-power-of-two alignment"},
      {52, 4, 4, "alignment below the floor"},
      {52, 1u << 25, 4, "alignment above the cap"},
      {56, 0, 4, "zero sections"},
      {56, 65, 4, "too many sections"},
      {56, 0x10000000u, 4, "section count overflowing the table"},
  };
  const std::string pristine = EncodeV3(MakeArtifact(/*with_vocab=*/true));
  for (const Forgery& forgery : forgeries) {
    std::string bytes = pristine;
    if (forgery.width == 4) {
      WriteLE<uint32_t>(&bytes, forgery.offset,
                        static_cast<uint32_t>(forgery.value));
    } else {
      WriteLE<uint64_t>(&bytes, forgery.offset, forgery.value);
    }
    FixV3Checksum(&bytes);
    ExpectBothPathsReject(bytes, "forged_dims.cpdb", forgery.what);
  }
}

TEST_F(ArtifactTortureTest, ForgedDerivedTopKBreaksSectionSizes) {
  // The derived sections were sized for top_k=2; claiming 3 must fail the
  // size-vs-dims check instead of serving mis-shaped postings.
  std::string bytes = EncodeV3(MakeArtifact(/*with_vocab=*/false),
                               /*top_k=*/2);
  WriteLE<uint32_t>(&bytes, 60, 3);
  FixV3Checksum(&bytes);
  ExpectBothPathsReject(bytes, "forged_topk.cpdb", "forged derived_top_k");
}

// ----- section-table forgeries -----

struct TableEntry {
  uint32_t id;
  uint32_t reserved;
  uint64_t offset;
  uint64_t length;
};

TableEntry ReadEntry(const std::string& bytes, size_t index) {
  const size_t base = kFixedHeader + index * kTableEntry;
  return {ReadLE<uint32_t>(bytes, base), ReadLE<uint32_t>(bytes, base + 4),
          ReadLE<uint64_t>(bytes, base + 8),
          ReadLE<uint64_t>(bytes, base + 16)};
}

void WriteEntry(std::string* bytes, size_t index, const TableEntry& entry) {
  const size_t base = kFixedHeader + index * kTableEntry;
  WriteLE<uint32_t>(bytes, base, entry.id);
  WriteLE<uint32_t>(bytes, base + 4, entry.reserved);
  WriteLE<uint64_t>(bytes, base + 8, entry.offset);
  WriteLE<uint64_t>(bytes, base + 16, entry.length);
}

TEST_F(ArtifactTortureTest, SectionTableForgeriesAreRejectedWithNames) {
  const std::string pristine = EncodeV3(MakeArtifact(/*with_vocab=*/true));
  const uint32_t count = ReadLE<uint32_t>(pristine, kSectionCountOffset);
  ASSERT_GE(count, 8u);

  {  // Unknown section id.
    std::string bytes = pristine;
    TableEntry entry = ReadEntry(bytes, 0);
    entry.id = 99;
    WriteEntry(&bytes, 0, entry);
    FixV3Checksum(&bytes);
    ExpectBothPathsReject(bytes, "tbl_unknown.cpdb", "unknown section id");
  }
  {  // Reserved word must stay zero.
    std::string bytes = pristine;
    TableEntry entry = ReadEntry(bytes, 1);
    entry.reserved = 7;
    WriteEntry(&bytes, 1, entry);
    FixV3Checksum(&bytes);
    ExpectBothPathsReject(bytes, "tbl_reserved.cpdb", "nonzero reserved");
  }
  {  // Duplicate section id.
    std::string bytes = pristine;
    TableEntry entry = ReadEntry(bytes, 1);
    entry.id = ReadEntry(bytes, 0).id;
    WriteEntry(&bytes, 1, entry);
    FixV3Checksum(&bytes);
    ExpectBothPathsReject(bytes, "tbl_dup.cpdb", "duplicate section");
  }
  {  // Misaligned offset — caught before any span is formed, with the
     // offending section named.
    std::string bytes = pristine;
    TableEntry entry = ReadEntry(bytes, 2);
    entry.offset += 4;
    WriteEntry(&bytes, 2, entry);
    FixV3Checksum(&bytes);
    const auto decoded = DecodeModelArtifact(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(decoded.status().message().find("aligned"), std::string::npos)
        << decoded.status().ToString();
    const auto mapped = MmapOpen(bytes, "tbl_misaligned.cpdb");
    ASSERT_FALSE(mapped.ok());
    EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Offset overlapping the header.
    std::string bytes = pristine;
    TableEntry entry = ReadEntry(bytes, 0);
    entry.offset = 0;
    WriteEntry(&bytes, 0, entry);
    FixV3Checksum(&bytes);
    ExpectBothPathsReject(bytes, "tbl_header_overlap.cpdb",
                          "section over the header");
  }
  {  // Offset past the end of the file -> OutOfRange, section named.
    std::string bytes = pristine;
    TableEntry entry = ReadEntry(bytes, 0);
    entry.offset = (bytes.size() + 4095) / 64 * 64 + 64 * 100;
    WriteEntry(&bytes, 0, entry);
    FixV3Checksum(&bytes);
    const auto decoded = DecodeModelArtifact(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
    EXPECT_NE(decoded.status().message().find("section"), std::string::npos)
        << decoded.status().ToString();
    const auto mapped = MmapOpen(bytes, "tbl_oob.cpdb");
    ASSERT_FALSE(mapped.ok());
    EXPECT_EQ(mapped.status().code(), StatusCode::kOutOfRange);
  }
  {  // Length sized to spill past the end of the file.
    std::string bytes = pristine;
    const size_t last = count - 1;
    TableEntry entry = ReadEntry(bytes, last);
    entry.length += 8;
    WriteEntry(&bytes, last, entry);
    FixV3Checksum(&bytes);
    ExpectBothPathsReject(bytes, "tbl_spill.cpdb", "over-long section");
  }
  {  // Two sections claiming the same byte range -> the overlap pair is
     // reported by name.
    std::string bytes = pristine;
    TableEntry first = ReadEntry(bytes, 0);
    TableEntry second = ReadEntry(bytes, 1);
    second.offset = first.offset;
    WriteEntry(&bytes, 1, second);
    FixV3Checksum(&bytes);
    const auto decoded = DecodeModelArtifact(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(IsTypedFailure(decoded.status()));
    const auto mapped = MmapOpen(bytes, "tbl_overlap.cpdb");
    ASSERT_FALSE(mapped.ok());
    EXPECT_TRUE(IsTypedFailure(mapped.status()));
  }
  {  // A missing mandatory section (drop eta_agg by renaming it into a
     // derived id slot it cannot occupy) must not produce an index with
     // garbage aggregates.
    std::string bytes = pristine;
    for (size_t i = 0; i < count; ++i) {
      TableEntry entry = ReadEntry(bytes, i);
      if (entry.id == 8) {  // kEtaAgg
        entry.id = 63;
        WriteEntry(&bytes, i, entry);
        break;
      }
    }
    FixV3Checksum(&bytes);
    ExpectBothPathsReject(bytes, "tbl_missing.cpdb", "missing eta_agg");
  }
}

TEST_F(ArtifactTortureTest, TrailingBytesAreRejectedByBothPaths) {
  std::string bytes = EncodeV3(MakeArtifact(/*with_vocab=*/true));
  bytes.push_back('\0');
  ExpectBothPathsReject(bytes, "trailing.cpdb", "one trailing byte");
}

TEST_F(ArtifactTortureTest, VocabSectionForgeryIsRejected) {
  // Rewrite the vocab section's count field to promise more words than the
  // section holds; the internal walk must stop at the boundary.
  const std::string pristine = EncodeV3(MakeArtifact(/*with_vocab=*/true));
  const uint32_t count = ReadLE<uint32_t>(pristine, kSectionCountOffset);
  for (size_t i = 0; i < count; ++i) {
    const TableEntry entry = ReadEntry(pristine, i);
    if (entry.id != 7) continue;  // kVocab
    std::string bytes = pristine;
    WriteLE<uint64_t>(&bytes, static_cast<size_t>(entry.offset), ~0ull >> 8);
    ExpectBothPathsReject(bytes, "vocab_forged.cpdb", "forged vocab count");
    return;
  }
  FAIL() << "no vocab section found";
}

// ----- legacy formats stay protected -----

TEST_F(ArtifactTortureTest, LegacyForgedHeaderCannotSizeAllocations) {
  for (const uint32_t version : {1u, 2u}) {
    std::string bytes =
        EncodeLegacy(MakeArtifact(/*with_vocab=*/version >= 2), version);
    // Legacy layout: ... |C| i32 @16, |Z| i32 @20, |U| u64 @24.
    WriteLE<uint64_t>(&bytes, 24, ~0ull >> 3);
    const auto decoded = DecodeModelArtifact(bytes);
    ASSERT_FALSE(decoded.ok()) << "v" << version;
    EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange)
        << decoded.status().ToString();
    // The error names the first section the forged header truncates.
    EXPECT_NE(decoded.status().message().find("section"), std::string::npos)
        << decoded.status().ToString();
  }
}

TEST_F(ArtifactTortureTest, MappingALegacyArtifactIsFailedPrecondition) {
  for (const uint32_t version : {1u, 2u}) {
    const std::string bytes =
        EncodeLegacy(MakeArtifact(/*with_vocab=*/version >= 2), version);
    const auto mapped = MmapOpen(bytes, "legacy.cpdb");
    ASSERT_FALSE(mapped.ok()) << "v" << version;
    EXPECT_EQ(mapped.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(mapped.status().message().find("mmap"), std::string::npos)
        << mapped.status().ToString();
  }
}

// ----- delta-specific torture -----

TEST_F(ArtifactTortureTest, DeltaForgeryTaxonomy) {
  ModelArtifact base = MakeArtifact(/*with_vocab=*/true);
  ModelArtifact target = MakeArtifact(/*with_vocab=*/true);
  target.generation = 12;
  target.pi[5] *= 2.0;
  auto delta = BuildModelDelta(base, target);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  auto encoded = EncodeModelDelta(*delta);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  const std::string pristine = *encoded;
  constexpr size_t kDeltaChecksum = 92;
  const auto fix = [](std::string* bytes) {
    uint32_t hash = 2166136261u;
    for (size_t i = 0; i < 96; ++i) {
      const bool in_hole = i >= kDeltaChecksum && i < kDeltaChecksum + 4;
      hash = (hash ^ (in_hole ? 0 : static_cast<uint8_t>((*bytes)[i]))) *
             16777619u;
    }
    WriteLE<uint32_t>(bytes, kDeltaChecksum, hash);
  };

  {  // Bad magic.
    std::string bytes = pristine;
    bytes[0] = 'X';
    const auto decoded = DecodeModelDelta(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Newer version.
    std::string bytes = pristine;
    WriteLE<uint32_t>(&bytes, 8, kModelDeltaVersion + 1);
    fix(&bytes);
    const auto decoded = DecodeModelDelta(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented);
  }
  {  // Foreign endianness.
    std::string bytes = pristine;
    WriteLE<uint32_t>(&bytes, 12, 0x04030201u);
    fix(&bytes);
    const auto decoded = DecodeModelDelta(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Forged touched count larger than |U|.
    std::string bytes = pristine;
    WriteLE<uint64_t>(&bytes, 84, 1000);
    fix(&bytes);
    const auto decoded = DecodeModelDelta(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Absurd |U| cannot size an allocation.
    std::string bytes = pristine;
    WriteLE<uint64_t>(&bytes, 24, ~0ull >> 3);
    fix(&bytes);
    const auto decoded = DecodeModelDelta(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(IsTypedFailure(decoded.status()))
        << decoded.status().ToString();
  }
  {  // Trailing byte.
    std::string bytes = pristine;
    bytes.push_back('\0');
    const auto decoded = DecodeModelDelta(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
  }
  {  // Unsorted touched ids: swap the encoded order of two ids. Craft a
     // delta with two touched rows first.
    ModelArtifact wide = target;
    wide.pi[0] += 1.0;  // Touch user 0 as well as user 1 (pi[5] above).
    auto two = BuildModelDelta(base, wide);
    ASSERT_TRUE(two.ok());
    ASSERT_GE(two->touched_users.size(), 2u);
    auto two_bytes = EncodeModelDelta(*two);
    ASSERT_TRUE(two_bytes.ok());
    std::string bytes = *two_bytes;
    const uint64_t first = ReadLE<uint64_t>(bytes, 96);
    const uint64_t second = ReadLE<uint64_t>(bytes, 104);
    WriteLE<uint64_t>(&bytes, 96, second);
    WriteLE<uint64_t>(&bytes, 104, first);
    const auto decoded = DecodeModelDelta(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << decoded.status().ToString();
  }
  {  // Applying against the wrong base generation.
    auto decoded = DecodeModelDelta(pristine);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ModelArtifact wrong_base = base;
    wrong_base.generation = 999;
    const auto applied = ApplyModelDelta(wrong_base, *decoded);
    ASSERT_FALSE(applied.ok());
    EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
  }
}

// ----- the pristine files still load (the suite must not be vacuous) -----

TEST_F(ArtifactTortureTest, PristineArtifactsLoadOnBothPaths) {
  for (const bool with_vocab : {false, true}) {
    const ModelArtifact artifact = MakeArtifact(with_vocab);
    const std::string bytes = EncodeV3(artifact);
    auto decoded = DecodeModelArtifact(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->generation, artifact.generation);
    EXPECT_EQ(decoded->pi, artifact.pi);
    auto mapped = MmapOpen(bytes, "pristine.cpdb");
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ((*mapped)->generation(), artifact.generation);
    const ModelArtifact materialized = (*mapped)->Materialize();
    EXPECT_EQ(materialized.pi, artifact.pi);
    EXPECT_EQ(materialized.vocab_words, artifact.vocab_words);
  }
}

}  // namespace
}  // namespace cpd
