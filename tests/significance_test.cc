#include <gtest/gtest.h>

#include "eval/significance.h"

namespace cpd {
namespace {

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 1.5, x),
                1.0 - RegularizedIncompleteBeta(1.5, 2.5, 1.0 - x), 1e-10);
  }
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(StudentTCdfTest, SymmetryAndCenter) {
  EXPECT_NEAR(StudentTCdf(0.0, 9), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(1.5, 9) + StudentTCdf(-1.5, 9), 1.0, 1e-10);
}

TEST(StudentTCdfTest, KnownCriticalValues) {
  // t_{0.975, 9} = 2.2622.
  EXPECT_NEAR(StudentTCdf(2.2622, 9), 0.975, 2e-4);
  // t_{0.99, 9} = 2.8214 (one-tailed 0.01 critical value used by the paper).
  EXPECT_NEAR(StudentTCdf(2.8214, 9), 0.99, 2e-4);
  // Large dof approaches the normal: t_{0.975, 1000} ~ 1.962.
  EXPECT_NEAR(StudentTCdf(1.962, 1000), 0.975, 5e-4);
}

TEST(PairedTTestTest, ClearImprovementIsSignificant) {
  // CPD-style per-fold AUCs: consistent ~0.05 improvement.
  const std::vector<double> ours = {0.85, 0.86, 0.84, 0.87, 0.85,
                                    0.86, 0.85, 0.84, 0.86, 0.85};
  const std::vector<double> baseline = {0.80, 0.81, 0.79, 0.81, 0.80,
                                        0.81, 0.80, 0.79, 0.81, 0.80};
  const TTestResult result = PairedTTestGreater(ours, baseline);
  EXPECT_EQ(result.degrees_of_freedom, 9);
  EXPECT_GT(result.t_statistic, 2.82);  // Beats the p<0.01 critical value.
  EXPECT_LT(result.p_value, 0.01);
}

TEST(PairedTTestTest, NoDifferenceIsInsignificant) {
  const std::vector<double> a = {0.5, 0.6, 0.4, 0.55, 0.45};
  const std::vector<double> b = {0.6, 0.5, 0.45, 0.5, 0.55};
  const TTestResult result = PairedTTestGreater(a, b);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(PairedTTestTest, WrongDirectionHasLargePValue) {
  const std::vector<double> worse = {0.4, 0.41, 0.39, 0.4};
  const std::vector<double> better = {0.6, 0.61, 0.59, 0.6};
  const TTestResult result = PairedTTestGreater(worse, better);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(PairedTTestTest, ZeroVarianceHandled) {
  const std::vector<double> a = {0.6, 0.6, 0.6};
  const std::vector<double> b = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(PairedTTestGreater(a, b).p_value, 0.0);
  EXPECT_DOUBLE_EQ(PairedTTestGreater(b, a).p_value, 1.0);
  EXPECT_DOUBLE_EQ(PairedTTestGreater(a, a).p_value, 1.0);
}

}  // namespace
}  // namespace cpd
