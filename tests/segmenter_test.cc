#include <gtest/gtest.h>

#include <unordered_set>

#include "parallel/segmenter.h"
#include "test_util.h"

namespace cpd {
namespace {

TEST(SegmenterTest, SegmentsPartitionUsers) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  WorkloadCostModel cost;
  auto segments = SegmentUsersByTopic(graph, 6, cost, /*lda_iterations=*/10);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 6u);
  std::unordered_set<UserId> seen;
  for (const DataSegment& segment : *segments) {
    for (UserId u : segment.users) {
      EXPECT_TRUE(seen.insert(u).second) << "user " << u << " in two segments";
    }
  }
  EXPECT_EQ(seen.size(), graph.num_users());
}

TEST(SegmenterTest, WorkloadsArePositiveAndAdditive) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  WorkloadCostModel cost;
  auto segments = SegmentUsersByTopic(graph, 4, cost, 10);
  ASSERT_TRUE(segments.ok());
  for (const DataSegment& segment : *segments) {
    double manual = 0.0;
    for (UserId u : segment.users) manual += EstimateUserWorkload(graph, u, cost);
    EXPECT_NEAR(segment.estimated_workload, manual, 1e-9);
    if (!segment.users.empty()) EXPECT_GT(segment.estimated_workload, 0.0);
  }
}

TEST(SegmenterTest, UserWorkloadScalesWithData) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  WorkloadCostModel cost;
  // A user with more documents must have at least as much estimated work as
  // a user with none of the structure. Compare the extremes by doc count.
  UserId most = 0, least = 0;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    if (graph.DocumentsOf(static_cast<UserId>(u)).size() >
        graph.DocumentsOf(most).size()) {
      most = static_cast<UserId>(u);
    }
    if (graph.DocumentsOf(static_cast<UserId>(u)).size() <
        graph.DocumentsOf(least).size()) {
      least = static_cast<UserId>(u);
    }
  }
  EXPECT_GE(EstimateUserWorkload(graph, most, cost),
            EstimateUserWorkload(graph, least, cost));
}

TEST(SegmenterTest, PlanThreadsAssignsEveryUser) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  WorkloadCostModel cost;
  auto plan = PlanThreads(graph, 6, 3, cost, 10);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->users_per_thread.size(), 3u);
  size_t total_users = 0;
  for (const auto& users : plan->users_per_thread) total_users += users.size();
  EXPECT_EQ(total_users, graph.num_users());
  EXPECT_EQ(plan->allocation.thread_workload.size(), 3u);
}

TEST(SegmenterTest, InvalidArgumentsRejected) {
  const SocialGraph graph = testing::MakeTinyGraph().graph;
  WorkloadCostModel cost;
  EXPECT_FALSE(SegmentUsersByTopic(graph, 0, cost).ok());
  EXPECT_FALSE(PlanThreads(graph, 4, 0, cost).ok());
}

}  // namespace
}  // namespace cpd
