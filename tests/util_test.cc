#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/file_util.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_writer.h"

namespace cpd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusIsRejected) {
  StatusOr<int> result((Status()));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(StringUtilTest, SplitBasic) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitSkipEmpty) {
  const auto parts = Split("a,,b,", ',', /*skip_empty=*/true);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtilTest, SplitWhitespaceCollapsesRuns) {
  const auto parts = SplitWhitespace("  hello \t world\n");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  abc \t"), "abc");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, ToLowerAscii) { EXPECT_EQ(ToLower("MiXeD123"), "mixed123"); }

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ftp://x", "http://"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("file.csv", ".tsv"));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(FileUtilTest, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cpd_file_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "line1\nline2\n").ok());
  EXPECT_TRUE(FileExists(path));
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "line1\nline2\n");
  auto lines = ReadLines(path);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[1], "line2");
  std::filesystem::remove(path);
}

TEST(FileUtilTest, MissingFileIsIOError) {
  auto result = ReadFileToString("/nonexistent/path/file.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(FileExists("/nonexistent/path/file.txt"));
}

TEST(TableWriterTest, TextAndCsvRendering) {
  TableWriter table("Demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow("beta", {2.5}, 1);
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string text = table.ToText();
  EXPECT_NE(text.find("Demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("beta,2.5"), std::string::npos);
}

TEST(TableWriterTest, CsvEscapesSpecials) {
  TableWriter table("T");
  table.SetHeader({"a"});
  table.AddRow({"x,y\"z"});
  EXPECT_NE(table.ToCsv().find("\"x,y\"\"z\""), std::string::npos);
}

TEST(FlagsTest, TypedGettersParseAndReject) {
  FlagMap flags{{"port", "8080"},  {"seed", "18446744073709551615"},
                {"bad", "12x"},    {"neg", "-3"},
                {"empty", ""},     {"huge", "99999999999999999999999"}};
  EXPECT_EQ(*GetInt64Flag(flags, "port", 0), 8080);
  EXPECT_EQ(*GetInt64Flag(flags, "absent", -7), -7);
  EXPECT_EQ(*GetInt64Flag(flags, "neg", 0), -3);
  EXPECT_EQ(*GetUint64Flag(flags, "seed", 0), 18446744073709551615ull);
  EXPECT_EQ(*GetUint64Flag(flags, "absent", 42), 42u);
  // Trailing junk, empty values, overflow, and negatives-for-unsigned are
  // typed errors naming the flag, never a silent zero.
  for (const char* bad : {"bad", "empty", "huge"}) {
    const auto value = GetInt64Flag(flags, bad, 0);
    EXPECT_FALSE(value.ok()) << bad;
    EXPECT_EQ(value.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(value.status().message().find(bad), std::string::npos);
  }
  EXPECT_FALSE(GetUint64Flag(flags, "neg", 0).ok());
  EXPECT_FALSE(GetUint64Flag(flags, "bad", 0).ok());
}

TEST(TableWriterTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace cpd
