// Loopback end-to-end tests of the embedded HTTP serving layer: endpoint
// parity with the in-process QueryEngine (byte-identical JSON), malformed
// input -> 400, admission control -> 429, deadlines -> 504, zero-downtime
// hot reload, and graceful shutdown draining in-flight requests.

#include "server/http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cpd_model.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/update_batch.h"
#include "serve/query_engine.h"
#include "server/json_api.h"
#include "server/model_registry.h"
#include "test_util.h"
#include "util/json.h"

namespace cpd {
namespace {

using server::HttpClient;
using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::HttpServerOptions;

constexpr const char* kHost = "127.0.0.1";

/// Trains one tiny model per seed (cached across tests).
class HttpServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph(131));
    model_a_ = new CpdModel(Train(17));
    model_b_ = new CpdModel(Train(23));
  }
  static void TearDownTestSuite() {
    delete model_a_;
    delete model_b_;
    delete data_;
    model_a_ = nullptr;
    model_b_ = nullptr;
    data_ = nullptr;
  }

  static CpdModel Train(uint64_t seed) {
    CpdConfig config;
    config.num_communities = 4;
    config.num_topics = 6;
    config.em_iterations = 4;
    config.seed = seed;
    auto model = CpdModel::Train(data_->graph, config);
    CPD_CHECK(model.ok());
    return std::move(*model);
  }

  static std::string TempPath(const char* name) {
    return ::testing::TempDir() + "/" + name;
  }

  /// Non-owning alias of the suite-cached graph (it outlives every test).
  static std::shared_ptr<const SocialGraph> SharedGraph() {
    return {&data_->graph, [](const SocialGraph*) {}};
  }

  /// Saves `model` (with the training vocabulary bundled) to a temp .cpdb.
  static std::string SaveArtifact(const CpdModel& model, const char* name) {
    const std::string path = TempPath(name);
    const Status saved =
        model.SaveBinary(path, &data_->graph.corpus().vocabulary());
    CPD_CHECK(saved.ok());
    return path;
  }

  static HttpResponse Fetch(int port, const std::string& method,
                            const std::string& target,
                            const std::string& body = "") {
    auto client = HttpClient::Connect(kHost, port);
    CPD_CHECK(client.ok());
    auto response = client->RoundTrip(method, target, body);
    CPD_CHECK(response.ok());
    return *response;
  }

  static SynthResult* data_;
  static CpdModel* model_a_;
  static CpdModel* model_b_;
};

SynthResult* HttpServerTest::data_ = nullptr;
CpdModel* HttpServerTest::model_a_ = nullptr;
CpdModel* HttpServerTest::model_b_ = nullptr;

/// Server + registry + routes around one artifact, torn down in order.
struct ServingFixture {
  explicit ServingFixture(const std::string& artifact_path,
                          std::shared_ptr<const SocialGraph> graph = nullptr,
                          HttpServerOptions options = {})
      : registry(serve::ProfileIndexOptions{}, std::move(graph)),
        server(MakeOptions(options)) {
    CPD_CHECK(registry.LoadFrom(artifact_path).ok());
    server::RegisterCpdRoutes(&server, &registry, &stats);
  }

  static HttpServerOptions MakeOptions(HttpServerOptions options) {
    options.port = 0;
    options.log_requests = false;  // Keep test output readable.
    // Headroom over the tests' live connections: a closed client's
    // server-side teardown can lag the next one-shot fetch on a busy
    // runner, and the lingering connection still holds a worker slot.
    options.threads = std::max(options.threads, 8);
    return options;
  }

  Status Start() { return server.Start(); }

  server::ModelRegistry registry;
  server::ServiceStats stats;
  HttpServer server;
};

// ----- endpoint parity: HTTP response bytes == in-process response -----

TEST_F(HttpServerTest, AllQueryTypesAreByteIdenticalToInProcessEngine) {
  const std::string path = SaveArtifact(*model_a_, "parity.cpdb");
  ServingFixture fixture(path, SharedGraph());
  ASSERT_TRUE(fixture.Start().ok());
  const int port = fixture.server.port();

  // The in-process reference: same artifact, same engine the server uses.
  const auto snapshot = fixture.registry.Snapshot();
  ASSERT_NE(snapshot, nullptr);
  ASSERT_NE(snapshot->vocabulary, nullptr);  // v2 artifact bundles it.
  const serve::QueryEngine& engine = *snapshot->engine;

  serve::MembershipRequest membership;
  membership.user = 3;
  membership.top_k = 3;
  membership.include_distribution = true;
  serve::RankCommunitiesRequest rank;
  rank.words = {1, 2};
  rank.top_k = 3;
  serve::DiffusionRequest diffusion;
  diffusion.source = data_->graph.document(0).user;
  diffusion.target = data_->graph.document(1).user;
  diffusion.document = 1;
  diffusion.time_bin = 2;
  serve::TopUsersRequest top_users;
  top_users.community = 1;
  top_users.top_k = 5;

  for (const serve::QueryRequest& request :
       {serve::QueryRequest(membership), serve::QueryRequest(rank),
        serve::QueryRequest(diffusion), serve::QueryRequest(top_users)}) {
    const std::string body = server::QueryRequestToJson(request).Dump();
    const HttpResponse response = Fetch(port, "POST", "/v1/query", body);
    ASSERT_EQ(response.status, 200) << body << " -> " << response.body;
    auto expected = engine.Query(request);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(response.body, server::QueryResponseToJson(*expected).Dump())
        << body;
  }
}

TEST_F(HttpServerTest, MembershipGetMatchesPostAndTextualRankResolves) {
  const std::string path = SaveArtifact(*model_a_, "get_parity.cpdb");
  ServingFixture fixture(path);
  ASSERT_TRUE(fixture.Start().ok());
  const int port = fixture.server.port();

  const HttpResponse get =
      Fetch(port, "GET", "/v1/membership/3?k=3&distribution=1");
  const HttpResponse post = Fetch(
      port, "POST", "/v1/query",
      R"({"type":"membership","user":3,"top_k":3,"include_distribution":true})");
  ASSERT_EQ(get.status, 200) << get.body;
  EXPECT_EQ(get.body, post.body);

  // Textual rank goes through the bundled vocabulary server-side.
  const auto& vocab = data_->graph.corpus().vocabulary();
  ASSERT_GT(vocab.size(), 0u);
  const std::string term = vocab.WordOf(0);
  Json rank = Json::MakeObject();
  rank.Set("type", Json("rank"));
  rank.Set("query", Json(term));
  rank.Set("top_k", Json(2));
  const HttpResponse response =
      Fetch(port, "POST", "/v1/query", rank.Dump());
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"ranked\""), std::string::npos);
}

TEST_F(HttpServerTest, BatchIsPositionallyAlignedWithPerSlotErrors) {
  const std::string path = SaveArtifact(*model_a_, "batch.cpdb");
  ServingFixture fixture(path);
  ASSERT_TRUE(fixture.Start().ok());

  const std::string body =
      R"({"batch":[)"
      R"({"type":"membership","user":0},)"
      R"({"type":"membership","user":999999},)"
      R"({"type":"top_users","community":0,"top_k":2}]})";
  const HttpResponse response =
      Fetch(fixture.server.port(), "POST", "/v1/query", body);
  ASSERT_EQ(response.status, 200);
  auto json = Json::Parse(response.body);
  ASSERT_TRUE(json.ok());
  const Json* responses = json->Find("responses");
  ASSERT_NE(responses, nullptr);
  ASSERT_EQ(responses->size(), 3u);
  EXPECT_NE((*responses)[0].Find("top"), nullptr);
  ASSERT_NE((*responses)[1].Find("error"), nullptr);  // Bad slot isolated.
  EXPECT_EQ((*responses)[1].Find("error")->Find("code")->string_value(),
            "OutOfRange");
  EXPECT_NE((*responses)[2].Find("users"), nullptr);
}

// ----- health, stats, errors -----

TEST_F(HttpServerTest, HealthzStatszAndTypedErrors) {
  const std::string path = SaveArtifact(*model_a_, "health.cpdb");
  ServingFixture fixture(path);
  ASSERT_TRUE(fixture.Start().ok());
  const int port = fixture.server.port();

  const HttpResponse health = Fetch(port, "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  auto health_json = Json::Parse(health.body);
  ASSERT_TRUE(health_json.ok());
  EXPECT_EQ(health_json->Find("status")->string_value(), "serving");
  EXPECT_EQ(health_json->Find("generation")->number(), 1.0);

  // Drive one query, then statsz must reflect it.
  ASSERT_EQ(
      Fetch(port, "POST", "/v1/query", R"({"type":"membership","user":0})")
          .status,
      200);
  const HttpResponse stats = Fetch(port, "GET", "/statsz");
  EXPECT_EQ(stats.status, 200);
  auto stats_json = Json::Parse(stats.body);
  ASSERT_TRUE(stats_json.ok());
  EXPECT_GE(stats_json->Find("service")->Find("queries")->number(), 1.0);
  EXPECT_GE(stats_json->Find("server")->Find("requests")->number(), 2.0);
  EXPECT_EQ(stats_json->Find("model")->Find("generation")->number(), 1.0);
  EXPECT_TRUE(
      stats_json->Find("model")->Find("precompute_scoring")->bool_value());
  // The membership query above landed one latency sample for its type.
  const Json* latency = stats_json->Find("service")->Find("latency");
  ASSERT_NE(latency, nullptr);
  ASSERT_NE(latency->Find("membership"), nullptr);
  EXPECT_GE(latency->Find("membership")->Find("count")->number(), 1.0);
  EXPECT_GT(latency->Find("membership")->Find("p50_us")->number(), 0.0);
  EXPECT_EQ(latency->Find("rank")->Find("count")->number(), 0.0);

  // Typed errors surface with mapped status codes.
  EXPECT_EQ(Fetch(port, "POST", "/v1/query", "this is not json").status, 400);
  EXPECT_EQ(Fetch(port, "POST", "/v1/query", R"({"type":"bogus"})").status,
            400);
  EXPECT_EQ(Fetch(port, "POST", "/v1/query", R"({"user":3})").status,
            400);  // Missing selector is malformed, not a missing resource.
  EXPECT_EQ(Fetch(port, "POST", "/v1/query",
                  R"({"type":"membership","user":999999})")
                .status,
            404);
  EXPECT_EQ(Fetch(port, "POST", "/v1/query",
                  R"({"type":"membership","user":4294967299})")
                .status,
            400);  // Out of int32 range: rejected, never truncated to u=3.
  EXPECT_EQ(Fetch(port, "GET", "/no/such/endpoint").status, 404);
  EXPECT_EQ(Fetch(port, "GET", "/v1/membership/notanumber").status, 400);
  EXPECT_EQ(Fetch(port, "GET", "/v1/membership/3?k=abc").status,
            400);  // The GET shortcut validates as strictly as the POST body.
  EXPECT_EQ(Fetch(port, "GET", "/v1/membership/99999999999999999999").status,
            400);
  // Diffusion without a bound graph is a typed FailedPrecondition (409).
  EXPECT_EQ(Fetch(port, "POST", "/v1/query",
                  R"({"type":"diffusion","source":0,"target":1,"document":0})")
                .status,
            409);
}

TEST_F(HttpServerTest, MalformedHttpFramingGets400AndClose) {
  const std::string path = SaveArtifact(*model_a_, "framing.cpdb");
  ServingFixture fixture(path);
  ASSERT_TRUE(fixture.Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(fixture.server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, kHost, &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string garbage = "THIS IS NOT HTTP\r\n\r\n";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);

  // An HTTP/1.0 request gets its answer and a close (1.0 semantics), so a
  // read-to-EOF client is not parked until the idle timeout.
  const int fd10 = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd10, 0);
  ASSERT_EQ(
      ::connect(fd10, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string legacy = "GET /healthz HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd10, legacy.data(), legacy.size(), 0),
            static_cast<ssize_t>(legacy.size()));
  response.clear();
  while ((n = ::recv(fd10, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd10);
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

// ----- admission control -----

TEST_F(HttpServerTest, OverloadedRequestsGet429WithRetryAfter) {
  // No model needed: admission control lives below the routes.
  HttpServerOptions options;
  options.port = 0;
  options.threads = 3;       // Room for blocker + prober connections.
  options.max_inflight = 1;  // But only one request may execute.
  options.log_requests = false;
  HttpServer server(options);

  std::mutex mutex;
  std::condition_variable cv;
  bool handler_entered = false;
  bool release_handler = false;
  server.Handle("GET", "/block", [&](const HttpRequest&) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      handler_entered = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release_handler; });
    HttpResponse response;
    response.body = "{\"blocked\":false}";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  std::thread blocker([&] {
    const HttpResponse response = Fetch(server.port(), "GET", "/block");
    EXPECT_EQ(response.status, 200);
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return handler_entered; });
  }

  // The slot is held: any further request is shed immediately, not queued.
  const auto before = std::chrono::steady_clock::now();
  auto client = HttpClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());
  auto rejected = client->RoundTrip("GET", "/block");
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 429);
  EXPECT_EQ(rejected->headers.at("retry-after"), "1");
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          before)
                .count(),
            5.0);  // Bounded: the 429 came back without waiting on the slot.

  // The same keep-alive connection works again once the slot frees up.
  {
    std::lock_guard<std::mutex> lock(mutex);
    release_handler = true;
  }
  cv.notify_all();
  blocker.join();
  auto after = client->RoundTrip("GET", "/block");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200);

  EXPECT_GE(server.stats().rejected_429, 1u);
  server.Stop();
}

TEST_F(HttpServerTest, ConnectionFloodShedsAtTheAcceptEdge) {
  HttpServerOptions options;
  options.port = 0;
  options.threads = 2;  // Two live connections; the third is shed.
  options.log_requests = false;
  HttpServer server(options);
  server.Handle("GET", "/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "{}";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  auto first = HttpClient::Connect(kHost, server.port());
  auto second = HttpClient::Connect(kHost, server.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Prove both connections are live (their workers are occupied).
  ASSERT_EQ(first->RoundTrip("GET", "/ping")->status, 200);
  ASSERT_EQ(second->RoundTrip("GET", "/ping")->status, 200);

  auto third = HttpClient::Connect(kHost, server.port());
  ASSERT_TRUE(third.ok());
  auto shed = third->RoundTrip("GET", "/ping");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 429);
  EXPECT_FALSE(third->connected());  // 429-and-close at the accept edge.
  EXPECT_GE(server.stats().connections_rejected, 1u);
  server.Stop();
}

// ----- deadlines -----

TEST_F(HttpServerTest, SlowHandlerGets504) {
  HttpServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.deadline_ms = 40;
  options.log_requests = false;
  HttpServer server(options);
  server.Handle("GET", "/slow", [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    HttpResponse response;
    response.body = "{\"late\":true}";
    return response;
  });
  server.Handle("GET", "/fast", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "{\"late\":false}";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  const HttpResponse slow = Fetch(server.port(), "GET", "/slow");
  EXPECT_EQ(slow.status, 504);
  EXPECT_NE(slow.body.find("DeadlineExceeded"), std::string::npos);
  const HttpResponse fast = Fetch(server.port(), "GET", "/fast");
  EXPECT_EQ(fast.status, 200);  // The deadline only fails over-budget work.
  EXPECT_EQ(server.stats().deadline_504, 1u);
  server.Stop();
}

// ----- hot reload -----

TEST_F(HttpServerTest, ReloadSwapsModelsWithZeroFailedInFlightRequests) {
  const std::string path_a = SaveArtifact(*model_a_, "reload_a.cpdb");
  const std::string path_b = SaveArtifact(*model_b_, "reload_b.cpdb");
  HttpServerOptions options;
  // Headroom for the 2 keep-alive traffic connections plus the test's
  // transient one-shot fetches (a closing client's server-side cleanup can
  // lag a connect by a few microseconds).
  options.threads = 6;
  ServingFixture fixture(path_a, nullptr, options);
  ASSERT_TRUE(fixture.Start().ok());
  const int port = fixture.server.port();

  // Expected membership bytes under each generation.
  serve::MembershipRequest probe;
  probe.user = 2;
  probe.top_k = 4;
  const std::string body = server::QueryRequestToJson(
      serve::QueryRequest(probe)).Dump();
  const auto expect_for = [&](const CpdModel& model) {
    const serve::ProfileIndex index = serve::ProfileIndex::FromModel(model);
    const serve::QueryEngine engine(index);
    auto response = engine.Membership(probe);
    CPD_CHECK(response.ok());
    return server::QueryResponseToJson(
               serve::QueryResponse(std::move(*response)))
        .Dump();
  };
  const std::string expected_a = expect_for(*model_a_);
  const std::string expected_b = expect_for(*model_b_);
  ASSERT_NE(expected_a, expected_b);  // Different seeds, different profiles.

  ASSERT_EQ(Fetch(port, "POST", "/v1/query", body).body, expected_a);

  // Hammer the endpoint from two threads while swapping to model B: every
  // response must be 200 and must equal one generation's bytes exactly
  // (never a torn mix).
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> traffic_count{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&] {
      auto client = HttpClient::Connect(kHost, port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      while (!stop.load()) {
        auto response = client->RoundTrip("POST", "/v1/query", body);
        if (!response.ok() || response->status != 200 ||
            (response->body != expected_a && response->body != expected_b)) {
          failures.fetch_add(1);
          return;
        }
        traffic_count.fetch_add(1);
      }
    });
  }
  // Let traffic flow, then swap mid-stream.
  while (traffic_count.load() < 20 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const HttpResponse reload = Fetch(port, "POST", "/admin/reload",
                                    "{\"path\":\"" + path_b + "\"}");
  ASSERT_EQ(reload.status, 200) << reload.body;
  auto reload_json = Json::Parse(reload.body);
  ASSERT_TRUE(reload_json.ok());
  EXPECT_EQ(reload_json->Find("generation")->number(), 2.0);
  const int after_swap = traffic_count.load();
  while (traffic_count.load() < after_swap + 20 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& thread : traffic) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Steady state after the swap: generation 2 serves model B's bytes.
  EXPECT_EQ(Fetch(port, "POST", "/v1/query", body).body, expected_b);
  auto health = Json::Parse(Fetch(port, "GET", "/healthz").body);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->Find("generation")->number(), 2.0);

  // A failed reload keeps the current model serving.
  EXPECT_EQ(Fetch(port, "POST", "/admin/reload",
                  R"({"path":"/no/such/file.cpdb"})")
                .status,
            500);
  EXPECT_EQ(Fetch(port, "POST", "/v1/query", body).body, expected_b);
}

// ----- streaming ingest -----

TEST_F(HttpServerTest, IngestWithoutAPipelineIsATyped409) {
  const std::string path = SaveArtifact(*model_a_, "ingest_off.cpdb");
  ServingFixture fixture(path);  // No pipeline registered.
  ASSERT_TRUE(fixture.Start().ok());
  const HttpResponse response =
      Fetch(fixture.server.port(), "POST", "/admin/ingest", "{}");
  EXPECT_EQ(response.status, 409);
  EXPECT_NE(response.body.find("ingest disabled"), std::string::npos);
}

TEST_F(HttpServerTest, IngestUnderLoadSwapsWithZeroFailedRequests) {
  const std::string artifact = SaveArtifact(*model_a_, "ingest_live.cpdb");

  // Pipeline over the suite graph + the artifact's model.
  ingest::IngestOptions ingest_options;
  ingest_options.config.num_communities = model_a_->num_communities();
  ingest_options.config.num_topics = model_a_->num_topics();
  ingest_options.config.seed = 71;
  ingest_options.warm_iterations = 1;
  ingest_options.artifact_base = TempPath("ingest_live");
  auto pipeline = ingest::IngestPipeline::Create(SharedGraph(), *model_a_,
                                                 ingest_options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // Registry wired by hand: injected clock, graph, pipeline-enabled routes.
  constexpr int64_t kFrozenClockMs = 1753948800123;
  server::ModelRegistry registry(serve::ProfileIndexOptions{}, SharedGraph());
  registry.SetClock([] { return kFrozenClockMs; });
  ASSERT_TRUE(registry.LoadFrom(artifact).ok());
  HttpServerOptions options;
  options.port = 0;
  options.threads = 8;
  options.log_requests = false;
  HttpServer server(options);
  server::ServiceStats stats;
  server::RegisterCpdRoutes(&server, &registry, &stats, pipeline->get());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // The injected clock is what /statsz reports for the load timestamp.
  {
    auto statsz = Json::Parse(Fetch(port, "GET", "/statsz").body);
    ASSERT_TRUE(statsz.ok());
    EXPECT_EQ(statsz->Find("model")->Find("loaded_unix_ms")->number(),
              static_cast<double>(kFrozenClockMs));
    EXPECT_EQ(statsz->Find("service")->Find("ingests")->number(), 0.0);
  }

  // The soon-to-be-ingested user does not exist yet: 404.
  const size_t base_users = data_->graph.num_users();
  const std::string new_user_target =
      "/v1/membership/" + std::to_string(base_users);
  EXPECT_EQ(Fetch(port, "GET", new_user_target).status, 404);

  // Hammer an existing user's membership from two keep-alive connections
  // while the ingest (graph merge + warm sweeps + artifact swap) runs:
  // every response must be a 200 (zero failed requests across the swap).
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> traffic_count{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&] {
      auto client = HttpClient::Connect(kHost, port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      while (!stop.load()) {
        auto response = client->RoundTrip("GET", "/v1/membership/2?k=3");
        if (!response.ok() || response->status != 200 ||
            response->body.empty()) {
          failures.fetch_add(1);
          return;
        }
        traffic_count.fetch_add(1);
      }
    });
  }
  while (traffic_count.load() < 20 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // One batch: 2 new users with replayed-token documents + friendships.
  Rng rng(97);
  ingest::SampleUpdateOptions batch_options;
  batch_options.new_users = 2;
  batch_options.docs_per_user = 2;
  batch_options.friends_per_user = 2;
  batch_options.diffusions = 2;
  batch_options.time = data_->graph.num_time_bins() - 1;
  const std::string batch_body =
      ingest::UpdateBatchToJson(
          ingest::SampleUpdateBatch(data_->graph, batch_options, &rng))
          .Dump();
  const HttpResponse ingest_response =
      Fetch(port, "POST", "/admin/ingest", batch_body);
  ASSERT_EQ(ingest_response.status, 200) << ingest_response.body;
  auto ingest_json = Json::Parse(ingest_response.body);
  ASSERT_TRUE(ingest_json.ok());
  EXPECT_EQ(ingest_json->Find("generation")->number(), 2.0);
  EXPECT_EQ(ingest_json->Find("ingested")->Find("users")->number(), 2.0);

  // Keep traffic flowing past the swap, then stop: zero failures.
  const int after_swap = traffic_count.load();
  while (traffic_count.load() < after_swap + 20 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& thread : traffic) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // The previously-unknown user now answers from the new generation.
  const HttpResponse membership = Fetch(port, "GET", new_user_target);
  EXPECT_EQ(membership.status, 200) << membership.body;
  EXPECT_NE(membership.body.find("\"top\""), std::string::npos);

  // statsz reflects the landed swap: generation 2, ingest counters, and the
  // new artifact path.
  auto statsz = Json::Parse(Fetch(port, "GET", "/statsz").body);
  ASSERT_TRUE(statsz.ok());
  const Json* model_json = statsz->Find("model");
  ASSERT_NE(model_json, nullptr);
  EXPECT_EQ(model_json->Find("generation")->number(), 2.0);
  EXPECT_EQ(model_json->Find("users")->number(),
            static_cast<double>(base_users + 2));
  EXPECT_NE(model_json->Find("path")->string_value().find(".g1.cpdb"),
            std::string::npos);
  const Json* service = statsz->Find("service");
  EXPECT_EQ(service->Find("ingests")->number(), 1.0);
  EXPECT_EQ(service->Find("ingested_users")->number(), 2.0);
  EXPECT_GE(service->Find("ingested_documents")->number(), 1.0);

  // A malformed batch is a typed client error and counts as a failure.
  EXPECT_EQ(Fetch(port, "POST", "/admin/ingest", "{\"num_users\":-1}").status,
            400);
  statsz = Json::Parse(Fetch(port, "GET", "/statsz").body);
  ASSERT_TRUE(statsz.ok());
  EXPECT_EQ(statsz->Find("service")->Find("ingest_failures")->number(), 1.0);
  server.Stop();
  std::filesystem::remove(TempPath("ingest_live.g1.cpdb"));
}

// ----- named models (/v1/models surface) -----

TEST_F(HttpServerTest, NamedModelRoutesServeIndependentModels) {
  const std::string path_a = SaveArtifact(*model_a_, "named_a.cpdb");
  const std::string path_b = SaveArtifact(*model_b_, "named_b.cpdb");
  ServingFixture fixture(path_a);
  ASSERT_TRUE(fixture.Start().ok());
  const int port = fixture.server.port();

  // Register a second model under the name "beta" via the reload route.
  const HttpResponse reload =
      Fetch(port, "POST", "/admin/reload",
            "{\"path\":\"" + path_b + "\",\"model\":\"beta\"}");
  ASSERT_EQ(reload.status, 200) << reload.body;
  auto reload_json = Json::Parse(reload.body);
  ASSERT_TRUE(reload_json.ok());
  EXPECT_EQ(reload_json->Find("name")->string_value(), "beta");
  EXPECT_EQ(reload_json->Find("generation")->number(), 1.0);

  // GET /v1/models lists both, name-sorted.
  const HttpResponse list = Fetch(port, "GET", "/v1/models");
  ASSERT_EQ(list.status, 200);
  auto list_json = Json::Parse(list.body);
  ASSERT_TRUE(list_json.ok());
  const Json* models = list_json->Find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->size(), 2u);
  EXPECT_EQ((*models)[0].Find("name")->string_value(), "beta");
  EXPECT_EQ((*models)[1].Find("name")->string_value(), "default");
  EXPECT_EQ((*models)[0].Find("path")->string_value(), path_b);
  EXPECT_EQ((*models)[1].Find("path")->string_value(), path_a);

  // The named query route answers with model B's bytes; the bare route
  // stays an alias for "default" (model A). Different seeds, different
  // profiles, so the bodies must differ.
  const std::string body = R"({"type":"membership","user":2,"top_k":4})";
  const HttpResponse via_default = Fetch(port, "POST", "/v1/query", body);
  const HttpResponse via_named_default =
      Fetch(port, "POST", "/v1/models/default/query", body);
  const HttpResponse via_beta =
      Fetch(port, "POST", "/v1/models/beta/query", body);
  ASSERT_EQ(via_default.status, 200);
  ASSERT_EQ(via_beta.status, 200);
  EXPECT_EQ(via_default.body, via_named_default.body);  // Alias is exact.
  EXPECT_NE(via_default.body, via_beta.body);

  // The named membership GET shortcut matches the named POST bytes.
  const HttpResponse get_beta =
      Fetch(port, "GET", "/v1/models/beta/membership/2?k=4");
  ASSERT_EQ(get_beta.status, 200);
  EXPECT_EQ(get_beta.body, via_beta.body);

  // An unknown name is a typed Unavailable (503), naming the model.
  const HttpResponse missing =
      Fetch(port, "POST", "/v1/models/nope/query", body);
  EXPECT_EQ(missing.status, 503);
  EXPECT_NE(missing.body.find("no model named 'nope'"), std::string::npos);
  EXPECT_EQ(Fetch(port, "GET", "/v1/models/nope/membership/2").status, 503);

  // statsz grows a per-model section; the beta row saw the beta queries.
  auto statsz = Json::Parse(Fetch(port, "GET", "/statsz").body);
  ASSERT_TRUE(statsz.ok());
  const Json* per_model = statsz->Find("models");
  ASSERT_NE(per_model, nullptr);
  ASSERT_NE(per_model->Find("beta"), nullptr);
  ASSERT_NE(per_model->Find("default"), nullptr);
  EXPECT_EQ(per_model->Find("beta")->Find("queries")->number(), 2.0);
  EXPECT_GE(per_model->Find("default")->Find("queries")->number(), 2.0);
}

TEST_F(HttpServerTest, ReloadModelFieldValidation) {
  const std::string path = SaveArtifact(*model_a_, "reload_named.cpdb");
  ServingFixture fixture(path);
  ASSERT_TRUE(fixture.Start().ok());
  const int port = fixture.server.port();

  // Empty name is a malformed request, not a lookup miss.
  EXPECT_EQ(Fetch(port, "POST", "/admin/reload", R"({"model":""})").status,
            400);
  // Reloading a name that was never loaded (and no path to load from) is a
  // client addressing error: 409, not 500.
  const HttpResponse missing =
      Fetch(port, "POST", "/admin/reload", R"({"model":"ghost"})");
  EXPECT_EQ(missing.status, 409);
  EXPECT_NE(missing.body.find("no model named 'ghost' loaded yet"),
            std::string::npos);
  // A bad path under a fresh name does not register the name.
  EXPECT_EQ(Fetch(port, "POST", "/admin/reload",
                  R"({"model":"ghost","path":"/no/such.cpdb"})")
                .status,
            500);
  auto list = Json::Parse(Fetch(port, "GET", "/v1/models").body);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->Find("models")->size(), 1u);
}

TEST_F(HttpServerTest, IngestModelFieldSwapsANamedModel) {
  const std::string artifact = SaveArtifact(*model_a_, "ingest_named.cpdb");
  ingest::IngestOptions ingest_options;
  ingest_options.config.num_communities = model_a_->num_communities();
  ingest_options.config.num_topics = model_a_->num_topics();
  ingest_options.config.seed = 73;
  ingest_options.warm_iterations = 1;
  ingest_options.artifact_base = TempPath("ingest_named");
  auto pipeline = ingest::IngestPipeline::Create(SharedGraph(), *model_a_,
                                                 ingest_options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  server::ModelRegistry registry(serve::ProfileIndexOptions{}, SharedGraph());
  ASSERT_TRUE(registry.LoadFrom(artifact).ok());
  HttpServerOptions options;
  options.port = 0;
  options.threads = 8;
  options.log_requests = false;
  HttpServer server(options);
  server::ServiceStats stats;
  server::RegisterCpdRoutes(&server, &registry, &stats, pipeline->get());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // The "model" selector rides in the same body as the update rows (the
  // batch decoder ignores unknown fields); the swap lands under that name
  // and the default model is untouched.
  Rng rng(101);
  ingest::SampleUpdateOptions batch_options;
  batch_options.new_users = 1;
  batch_options.docs_per_user = 1;
  batch_options.time = data_->graph.num_time_bins() - 1;
  Json batch_json = ingest::UpdateBatchToJson(
      ingest::SampleUpdateBatch(data_->graph, batch_options, &rng));
  batch_json.Set("model", Json("staging"));
  const HttpResponse response =
      Fetch(port, "POST", "/admin/ingest", batch_json.Dump());
  ASSERT_EQ(response.status, 200) << response.body;
  auto json = Json::Parse(response.body);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Find("name")->string_value(), "staging");
  EXPECT_EQ(json->Find("generation")->number(), 1.0);

  auto list = Json::Parse(Fetch(port, "GET", "/v1/models").body);
  ASSERT_TRUE(list.ok());
  const Json* models = list->Find("models");
  ASSERT_EQ(models->size(), 2u);
  EXPECT_EQ((*models)[0].Find("name")->string_value(), "default");
  EXPECT_EQ((*models)[0].Find("path")->string_value(), artifact);
  EXPECT_EQ((*models)[1].Find("name")->string_value(), "staging");
  EXPECT_NE((*models)[1].Find("path")->string_value().find(".g1.cpdb"),
            std::string::npos);

  // The staging model serves the ingested user; the default still 404s it.
  const std::string new_user =
      "/membership/" + std::to_string(data_->graph.num_users());
  EXPECT_EQ(Fetch(port, "GET", "/v1/models/staging" + new_user).status, 200);
  EXPECT_EQ(Fetch(port, "GET", "/v1" + new_user).status, 404);
  server.Stop();
  std::filesystem::remove(TempPath("ingest_named.g1.cpdb"));
}

// ----- body cap: rejected by declared length, before any body bytes -----

TEST_F(HttpServerTest, OversizedContentLengthIs413BeforeTheBodyIsSent) {
  for (const auto io_mode :
       {server::IoMode::kBlocking, server::IoMode::kEpoll}) {
    HttpServerOptions options;
    options.port = 0;
    options.threads = 2;
    options.io_mode = io_mode;
    options.max_body_bytes = 1024;
    options.log_requests = false;
    HttpServer server(options);
    server.Handle("POST", "/admin/ingest", [](const HttpRequest&) {
      HttpResponse response;
      response.body = "{}";
      return response;
    });
    ASSERT_TRUE(server.Start().ok());

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ASSERT_EQ(::inet_pton(AF_INET, kHost, &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    // An oversized ingest batch announces itself via Content-Length. The
    // head alone (zero body bytes sent) must already draw the 413 — the
    // parser rejects the declared length instead of buffering toward a cap
    // it can never reach.
    const std::string head =
        "POST /admin/ingest HTTP/1.1\r\n"
        "Host: test\r\n"
        "Content-Length: 1048576\r\n"
        "\r\n";
    ASSERT_EQ(::send(fd, head.data(), head.size(), 0),
              static_cast<ssize_t>(head.size()));
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      response.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(response.find("413 Payload Too Large"), std::string::npos)
        << server::IoModeName(io_mode) << ": " << response;
    EXPECT_NE(response.find("\"OutOfRange\""), std::string::npos);
    EXPECT_NE(response.find("Connection: close"), std::string::npos);
    server.Stop();
  }
}

// ----- graceful shutdown -----

TEST_F(HttpServerTest, StopDrainsInFlightRequests) {
  HttpServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.log_requests = false;
  HttpServer server(options);
  std::atomic<bool> handler_entered{false};
  server.Handle("GET", "/slow", [&](const HttpRequest&) {
    handler_entered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    HttpResponse response;
    response.body = "{\"drained\":true}";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  std::thread in_flight([&] {
    const HttpResponse response = Fetch(port, "GET", "/slow");
    // The in-flight request finishes with its real response, and the
    // server closes the connection afterwards.
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "{\"drained\":true}");
  });
  while (!handler_entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();  // Must block until the in-flight response is written.
  in_flight.join();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(HttpClient::Connect(kHost, port).ok());
}

}  // namespace
}  // namespace cpd
