#include <gtest/gtest.h>

#include <cmath>

#include "core/cpd_model.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace cpd {
namespace {

// Degenerate-input robustness: the trainer must handle graphs missing whole
// observation types (the generative model factorizes, so each part can be
// absent) and extreme configuration corners without crashing.

SocialGraph ContentOnlyGraph() {
  GraphBuilder builder;
  builder.SetNumUsers(20);
  Vocabulary vocab;
  std::vector<WordId> words;
  for (int w = 0; w < 30; ++w) {
    words.push_back(vocab.GetOrAdd("word" + std::to_string(w)));
  }
  builder.SetVocabulary(vocab);
  Rng rng(17);
  for (UserId u = 0; u < 20; ++u) {
    for (int d = 0; d < 3; ++d) {
      std::vector<WordId> doc;
      for (int k = 0; k < 5; ++k) {
        doc.push_back(words[rng.NextUint64(words.size())]);
      }
      builder.AddTokenizedDocument(u, 0, doc);
    }
  }
  auto graph = builder.Build();
  CPD_CHECK(graph.ok());
  return std::move(*graph);
}

TEST(RobustnessTest, TrainsWithoutAnyLinks) {
  const SocialGraph graph = ContentOnlyGraph();
  ASSERT_EQ(graph.num_friendship_links(), 0u);
  ASSERT_EQ(graph.num_diffusion_links(), 0u);
  CpdConfig config;
  config.num_communities = 3;
  config.num_topics = 4;
  config.em_iterations = 3;
  auto model = CpdModel::Train(graph, config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // Profiles still well-formed.
  for (int c = 0; c < 3; ++c) {
    double total = 0.0;
    for (double p : model->ContentProfile(c)) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RobustnessTest, TrainsWithSingleCommunityAndTopic) {
  const SynthResult data = testing::MakeTinyGraph(19);
  CpdConfig config;
  config.num_communities = 1;
  config.num_topics = 1;
  config.em_iterations = 2;
  auto model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Membership(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(model->ContentProfile(0)[0], 1.0);
}

TEST(RobustnessTest, MoreCommunitiesThanUsers) {
  const SocialGraph graph = ContentOnlyGraph();  // 20 users.
  CpdConfig config;
  config.num_communities = 40;
  config.num_topics = 4;
  config.em_iterations = 2;
  auto model = CpdModel::Train(graph, config);
  ASSERT_TRUE(model.ok());
  // Memberships remain valid distributions.
  double total = 0.0;
  for (double p : model->Membership(0)) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RobustnessTest, ParallelTrainingWithMoreThreadsThanSegments) {
  const SynthResult data = testing::MakeTinyGraph(23);
  CpdConfig config;
  config.num_communities = 3;
  config.num_topics = 2;  // Few segments...
  config.em_iterations = 2;
  config.num_threads = 8;  // ...many threads.
  auto model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(model.ok());
}

TEST(RobustnessTest, AllAblationsOffStillTrains) {
  const SynthResult data = testing::MakeTinyGraph(29);
  CpdConfig config;
  config.num_communities = 3;
  config.num_topics = 4;
  config.em_iterations = 2;
  config.ablation.model_friendship = false;
  config.ablation.model_diffusion = false;
  config.ablation.individual_factor = false;
  config.ablation.topic_factor = false;
  auto model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(model.ok());  // Reduces to a content-only mixture model.
}

TEST(RobustnessTest, PopularityModesAllTrain) {
  const SynthResult data = testing::MakeTinyGraph(31);
  for (PopularityMode mode : {PopularityMode::kRaw, PopularityMode::kFraction,
                              PopularityMode::kLog1p}) {
    CpdConfig config;
    config.num_communities = 3;
    config.num_topics = 4;
    config.em_iterations = 2;
    config.popularity_mode = mode;
    auto model = CpdModel::Train(data.graph, config);
    ASSERT_TRUE(model.ok()) << "mode " << static_cast<int>(mode);
    for (double w : model->DiffusionWeights()) EXPECT_TRUE(std::isfinite(w));
  }
}

TEST(RobustnessTest, RejectsOversizedPriors) {
  const SynthResult data = testing::MakeTinyGraph(37);
  CpdConfig config;
  config.num_communities = 3;
  config.num_topics = 4;
  config.beta = 0.0;  // Invalid.
  EXPECT_FALSE(CpdModel::Train(data.graph, config).ok());
}

}  // namespace
}  // namespace cpd
