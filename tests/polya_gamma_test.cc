#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sampling/polya_gamma.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace cpd {
namespace {

TEST(PolyaGammaTest, TheoreticalMeanFormula) {
  EXPECT_NEAR(PolyaGammaSampler::Mean(0.0), 0.25, 1e-9);
  // tanh(1/2)/2 for c = 1.
  EXPECT_NEAR(PolyaGammaSampler::Mean(1.0), std::tanh(0.5) / 2.0, 1e-12);
  // Symmetric in c.
  EXPECT_DOUBLE_EQ(PolyaGammaSampler::Mean(2.5), PolyaGammaSampler::Mean(-2.5));
}

TEST(PolyaGammaTest, TheoreticalVarianceFormula) {
  EXPECT_NEAR(PolyaGammaSampler::Variance(0.0), 1.0 / 24.0, 1e-9);
  const double c = 2.0;
  const double expected = (std::sinh(c) - c) /
                          (4.0 * c * c * c * std::cosh(c / 2.0) * std::cosh(c / 2.0));
  EXPECT_NEAR(PolyaGammaSampler::Variance(c), expected, 1e-12);
}

TEST(PolyaGammaTest, SamplesArePositive) {
  PolyaGammaSampler sampler;
  Rng rng(31);
  for (double c : {0.0, 0.5, 2.0, 10.0, -3.0}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_GT(sampler.Sample(c, &rng), 0.0) << "c=" << c;
    }
  }
}

// Parameterized moment check: the sampled mean/variance must match the
// closed-form PG(1, c) moments across the range of energies the Gibbs
// sampler produces.
class PolyaGammaMomentTest : public ::testing::TestWithParam<double> {};

TEST_P(PolyaGammaMomentTest, EmpiricalMomentsMatchTheory) {
  const double c = GetParam();
  PolyaGammaSampler sampler;
  Rng rng(static_cast<uint64_t>(1000 + c * 13.0));
  const int n = 120000;
  std::vector<double> samples(n);
  for (double& s : samples) s = sampler.Sample(c, &rng);
  const double mean = Mean(samples);
  const double variance = Variance(samples);
  const double expected_mean = PolyaGammaSampler::Mean(c);
  const double expected_var = PolyaGammaSampler::Variance(c);
  EXPECT_NEAR(mean, expected_mean, 6.0 * std::sqrt(expected_var / n) + 1e-6)
      << "c=" << c;
  EXPECT_NEAR(variance, expected_var, 0.08 * expected_var + 1e-6) << "c=" << c;
}

INSTANTIATE_TEST_SUITE_P(EnergySweep, PolyaGammaMomentTest,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, 2.0, 4.0, 8.0,
                                           16.0, -1.0, -6.0));

TEST(PolyaGammaTest, LaplaceTransformIdentity) {
  // E[exp(-x t)] for x ~ PG(1, 0) equals 1/cosh(sqrt(t/2)) (PSW Thm 1).
  PolyaGammaSampler sampler;
  Rng rng(77);
  const double t = 1.7;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::exp(-t * sampler.Sample(0.0, &rng));
  const double expected = 1.0 / std::cosh(std::sqrt(t / 2.0));
  EXPECT_NEAR(sum / n, expected, 0.004);
}

TEST(InverseGaussianCdfTest, MonotoneAndBounded) {
  double prev = 0.0;
  for (double x = 0.05; x < 5.0; x += 0.05) {
    const double cdf = InverseGaussianCdf(x, 1.3);
    EXPECT_GE(cdf, prev - 1e-12);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0 + 1e-9);
    prev = cdf;
  }
  EXPECT_NEAR(InverseGaussianCdf(50.0, 1.3), 1.0, 1e-6);
}

TEST(InverseGaussianCdfTest, ZeroTiltIsLevyLimit) {
  // For z = 0 the CDF reduces to 2 Phi(-1/sqrt(x)).
  for (double x : {0.2, 0.64, 2.0}) {
    EXPECT_NEAR(InverseGaussianCdf(x, 0.0),
                2.0 * StandardNormalCdf(-1.0 / std::sqrt(x)), 1e-12);
  }
}

TEST(StandardNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(StandardNormalCdf(-1.959963985), 0.025, 1e-6);
}

}  // namespace
}  // namespace cpd
