// Fast-vs-reference scoring equivalence: every query type must answer
// identically whether the ProfileIndex carries the precomputed scoring
// tables (ProfileIndexOptions::precompute_scoring, the serving fast path)
// or scores through the naive reference kernels. The precompute build
// mirrors the reference kernels' accumulation orders exactly, so the pin
// is bitwise equality, not a tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <variant>
#include <vector>

#include "core/cpd_model.h"
#include "core/model_artifact.h"
#include "core/model_state.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "test_util.h"

namespace cpd {
namespace {

using serve::ProfileIndex;
using serve::ProfileIndexOptions;
using serve::QueryEngine;
using serve::QueryRequest;
using serve::QueryResponse;

class ScoringEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph(211));
    CpdConfig config;
    config.num_communities = 4;
    config.num_topics = 6;
    config.em_iterations = 5;
    config.seed = 23;
    auto model = CpdModel::Train(data_->graph, config);
    ASSERT_TRUE(model.ok()) << model.status().ToString();

    fast_ = new ProfileIndex(ProfileIndex::FromModel(*model));
    ProfileIndexOptions reference_options;
    reference_options.precompute_scoring = false;
    reference_ =
        new ProfileIndex(ProfileIndex::FromModel(*model, reference_options));
  }
  static void TearDownTestSuite() {
    delete fast_;
    delete reference_;
    delete data_;
    fast_ = nullptr;
    reference_ = nullptr;
    data_ = nullptr;
  }

  /// Both engines answer `request` OK and the responses match bitwise.
  static void ExpectIdentical(const QueryEngine& fast,
                              const QueryEngine& reference,
                              const QueryRequest& request) {
    const auto expected = reference.Query(request);
    const auto actual = fast.Query(request);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(expected->index(), actual->index());
    if (const auto* m = std::get_if<serve::MembershipResponse>(&*expected)) {
      const auto& f = std::get<serve::MembershipResponse>(*actual);
      ASSERT_EQ(m->top.size(), f.top.size());
      for (size_t i = 0; i < m->top.size(); ++i) {
        EXPECT_EQ(m->top[i].community, f.top[i].community);
        EXPECT_EQ(m->top[i].weight, f.top[i].weight);
      }
      EXPECT_EQ(m->distribution, f.distribution);
    } else if (const auto* r =
                   std::get_if<serve::RankCommunitiesResponse>(&*expected)) {
      const auto& f = std::get<serve::RankCommunitiesResponse>(*actual);
      ASSERT_EQ(r->ranked.size(), f.ranked.size());
      for (size_t i = 0; i < r->ranked.size(); ++i) {
        EXPECT_EQ(r->ranked[i].community, f.ranked[i].community)
            << "rank position " << i;
        EXPECT_EQ(r->ranked[i].score, f.ranked[i].score)
            << "rank position " << i;
        EXPECT_EQ(r->ranked[i].topic_distribution,
                  f.ranked[i].topic_distribution)
            << "rank position " << i;
      }
    } else if (const auto* d =
                   std::get_if<serve::DiffusionResponse>(&*expected)) {
      const auto& f = std::get<serve::DiffusionResponse>(*actual);
      EXPECT_EQ(d->probability, f.probability);
      EXPECT_EQ(d->friendship_score, f.friendship_score);
    } else {
      const auto& t = std::get<serve::TopUsersResponse>(*expected);
      const auto& f = std::get<serve::TopUsersResponse>(*actual);
      EXPECT_EQ(t.users, f.users);
      EXPECT_EQ(t.weights, f.weights);
    }
  }

  static SynthResult* data_;
  static ProfileIndex* fast_;
  static ProfileIndex* reference_;
};

SynthResult* ScoringEquivalenceTest::data_ = nullptr;
ProfileIndex* ScoringEquivalenceTest::fast_ = nullptr;
ProfileIndex* ScoringEquivalenceTest::reference_ = nullptr;

TEST_F(ScoringEquivalenceTest, PrecomputeOptionControlsTheTables) {
  EXPECT_TRUE(fast_->has_scoring_tables());
  EXPECT_FALSE(reference_->has_scoring_tables());
  // The tables really are what the kernels assume: M = sum_c2 G row,
  // G = eta * theta, log-phi rows = floored std::log of the phi columns.
  for (int c = 0; c < fast_->num_communities(); ++c) {
    for (int z = 0; z < fast_->num_topics(); ++z) {
      const auto row = fast_->EtaThetaRow(c, z);
      double total = 0.0;
      for (int c2 = 0; c2 < fast_->num_communities(); ++c2) {
        EXPECT_EQ(row[static_cast<size_t>(c2)],
                  fast_->Eta(c, c2, z) *
                      fast_->ContentProfile(c2)[static_cast<size_t>(z)]);
        total += row[static_cast<size_t>(c2)];
      }
      EXPECT_EQ(fast_->LinkContentRow(c)[static_cast<size_t>(z)], total);
    }
  }
  for (WordId w = 0; w < static_cast<WordId>(fast_->vocab_size()); w += 7) {
    const auto row = fast_->WordLogPhi(w);
    for (int z = 0; z < fast_->num_topics(); ++z) {
      EXPECT_EQ(row[static_cast<size_t>(z)],
                std::log(std::max(
                    fast_->TopicWords(z)[static_cast<size_t>(w)], 1e-300)));
    }
  }
}

TEST_F(ScoringEquivalenceTest, RankCommunitiesMatchesReference) {
  const QueryEngine fast(*fast_);
  const QueryEngine reference(*reference_);
  const WordId vocab = static_cast<WordId>(fast_->vocab_size());
  for (const bool include_distribution : {true, false}) {
    for (const int top_k : {0, 1, 2, 100}) {
      for (const std::vector<WordId> words :
           {std::vector<WordId>{}, std::vector<WordId>{0},
            std::vector<WordId>{1, 2},
            std::vector<WordId>{static_cast<WordId>(vocab - 1), 3, 3, 5}}) {
        serve::RankCommunitiesRequest request;
        request.words = words;
        request.top_k = top_k;
        request.include_topic_distribution = include_distribution;
        ExpectIdentical(fast, reference, request);
      }
    }
  }
}

TEST_F(ScoringEquivalenceTest, RankSkipsTopicDistributionWhenNotRequested) {
  for (const ProfileIndex* index : {fast_, reference_}) {
    const QueryEngine engine(*index);
    serve::RankCommunitiesRequest request;
    request.words = {0, 1};
    request.include_topic_distribution = false;
    const auto response = engine.RankCommunities(request);
    ASSERT_TRUE(response.ok());
    for (const auto& entry : response->ranked) {
      EXPECT_TRUE(entry.topic_distribution.empty());
      EXPECT_EQ(entry.topic_distribution.capacity(), 0u)
          << "distribution buffer was allocated despite not being requested";
    }
  }
}

TEST_F(ScoringEquivalenceTest, RankTopKEqualsFullSortPrefix) {
  const QueryEngine fast(*fast_);
  serve::RankCommunitiesRequest full;
  full.words = {2, 4};
  full.top_k = 0;
  const auto everything = fast.RankCommunities(full);
  ASSERT_TRUE(everything.ok());
  for (int top_k = 1; top_k <= fast_->num_communities(); ++top_k) {
    serve::RankCommunitiesRequest partial = full;
    partial.top_k = top_k;
    const auto prefix = fast.RankCommunities(partial);
    ASSERT_TRUE(prefix.ok());
    ASSERT_EQ(prefix->ranked.size(), static_cast<size_t>(top_k));
    for (int i = 0; i < top_k; ++i) {
      EXPECT_EQ(prefix->ranked[static_cast<size_t>(i)].community,
                everything->ranked[static_cast<size_t>(i)].community);
      EXPECT_EQ(prefix->ranked[static_cast<size_t>(i)].score,
                everything->ranked[static_cast<size_t>(i)].score);
    }
  }
}

/// Uniform estimates tie every community's score; the partial top-k must
/// keep the full sort's stable tie order (ascending community id).
TEST_F(ScoringEquivalenceTest, TopKTieBreakingIsStable) {
  ModelArtifact artifact;
  artifact.num_communities = 5;
  artifact.num_topics = 3;
  artifact.num_users = 2;
  artifact.vocab_size = 4;
  artifact.num_time_bins = 1;
  artifact.pi.assign(2 * 5, 1.0 / 5);
  artifact.theta.assign(5 * 3, 1.0 / 3);
  artifact.phi.assign(3 * 4, 1.0 / 4);
  artifact.eta.assign(5 * 5 * 3, 0.5);
  artifact.weights.assign(kNumDiffusionWeights, 0.0);
  artifact.popularity.assign(1 * 3, 1.0 / 3);
  for (const bool precompute : {true, false}) {
    ProfileIndexOptions options;
    options.precompute_scoring = precompute;
    ModelArtifact copy = artifact;
    auto index = ProfileIndex::FromArtifact(std::move(copy), options);
    ASSERT_TRUE(index.ok());
    const QueryEngine engine(*index);
    serve::RankCommunitiesRequest request;
    request.words = {0, 1};
    request.top_k = 3;
    const auto response = engine.RankCommunities(request);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->ranked.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(response->ranked[static_cast<size_t>(i)].community, i)
          << "precompute=" << precompute;
    }
  }
}

TEST_F(ScoringEquivalenceTest, MembershipAndTopUsersMatchReference) {
  const QueryEngine fast(*fast_);
  const QueryEngine reference(*reference_);
  for (UserId u = 0; u < 10; ++u) {
    serve::MembershipRequest request;
    request.user = u;
    request.top_k = static_cast<int>(u) % 5;
    request.include_distribution = (u % 2) == 0;
    ExpectIdentical(fast, reference, request);
  }
  for (int c = 0; c < fast_->num_communities(); ++c) {
    for (const int top_k : {0, 1, 7, 1000}) {
      serve::TopUsersRequest request;
      request.community = c;
      request.top_k = top_k;
      ExpectIdentical(fast, reference, request);
    }
  }
}

TEST_F(ScoringEquivalenceTest, TopUsersWeightsComeFromThePosting) {
  // The posted weights must equal the pi rows they were copied from.
  for (int c = 0; c < fast_->num_communities(); ++c) {
    const auto members = fast_->CommunityMembers(c);
    const auto weights = fast_->CommunityMemberWeights(c);
    ASSERT_EQ(members.size(), weights.size());
    for (size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(weights[i],
                fast_->Membership(members[i])[static_cast<size_t>(c)]);
    }
  }
}

TEST_F(ScoringEquivalenceTest, DiffusionAndPosteriorMatchReference) {
  const QueryEngine fast(*fast_, &data_->graph);
  const QueryEngine reference(*reference_, &data_->graph);
  const auto& links = data_->graph.diffusion_links();
  ASSERT_FALSE(links.empty());
  for (size_t e = 0; e < std::min<size_t>(8, links.size()); ++e) {
    const DiffusionLink& link = links[e];
    serve::DiffusionRequest request;
    request.source = data_->graph.document(link.i).user;
    request.target = data_->graph.document(link.j).user;
    request.document = link.j;
    request.time_bin = link.time;
    ExpectIdentical(fast, reference, request);
  }
  for (DocId d = 0; d < 6; ++d) {
    const auto expected = reference.DocumentTopicPosterior(d);
    const auto actual = fast.DocumentTopicPosterior(d);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(*expected, *actual);
  }
  for (UserId u = 0; u < 6; ++u) {
    for (UserId v = 0; v < 6; ++v) {
      for (int z = 0; z < fast_->num_topics(); ++z) {
        EXPECT_EQ(fast.CommunityScore(u, v, z),
                  reference.CommunityScore(u, v, z));
      }
    }
  }
}

/// Degenerate requests behave identically across the two kernel sets.
TEST_F(ScoringEquivalenceTest, DegenerateRequestsAgree) {
  const QueryEngine fast(*fast_);
  const QueryEngine reference(*reference_);
  serve::RankCommunitiesRequest bad_word;
  bad_word.words = {static_cast<WordId>(fast_->vocab_size())};
  EXPECT_EQ(fast.RankCommunities(bad_word).status().code(),
            reference.RankCommunities(bad_word).status().code());
  serve::RankCommunitiesRequest negative_k;
  negative_k.top_k = -1;
  EXPECT_EQ(fast.RankCommunities(negative_k).status().code(),
            StatusCode::kInvalidArgument);
  // Empty query, no distribution, huge k: the prior ranking, full length.
  serve::RankCommunitiesRequest empty;
  empty.top_k = 10000;
  empty.include_topic_distribution = false;
  ExpectIdentical(fast, reference, empty);
}

}  // namespace
}  // namespace cpd
