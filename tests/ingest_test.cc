// Streaming ingest: UpdateBatch codec + validation, merged-graph id
// stability, warm-start correctness (serial-vs-pooled bit identity,
// untouched-user invariance, counter consistency), warm-vs-cold quality
// parity, and the IngestPipeline's artifact chain.

#include "ingest/update_batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/cpd_model.h"
#include "core/em_trainer.h"
#include "eval/metrics.h"
#include "ingest/ingest_pipeline.h"
#include "serve/profile_index.h"
#include "serve/query_engine.h"
#include "test_util.h"
#include "util/json.h"

namespace cpd {
namespace {

using ingest::ApplyUpdate;
using ingest::IngestOptions;
using ingest::IngestPipeline;
using ingest::NewDocument;
using ingest::SampleUpdateBatch;
using ingest::SampleUpdateOptions;
using ingest::UpdateBatch;
using ingest::UpdateBatchFromJson;
using ingest::UpdateBatchToJson;

CpdConfig TinyConfig(uint64_t seed = 7) {
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 5;
  config.seed = seed;
  return config;
}

UpdateBatch TinyBatch(const SocialGraph& base, uint64_t seed = 5) {
  Rng rng(seed);
  SampleUpdateOptions options;
  options.new_users = 3;
  options.docs_per_user = 3;
  options.novel_words_per_doc = 1;
  options.friends_per_user = 2;
  options.diffusions = 3;
  options.time = base.num_time_bins() - 1;
  return SampleUpdateBatch(base, options, &rng);
}

// ----- wire codec -----

TEST(UpdateBatchJson, RoundTripsThroughTheWireForm) {
  const SocialGraph base = testing::MakeHandGraph();
  UpdateBatch batch = TinyBatch(base);
  batch.documents.push_back(
      {/*user=*/1, /*time=*/2, /*text=*/"raw text body", /*tokens=*/{}});
  const Json wire = UpdateBatchToJson(batch);
  auto parsed = UpdateBatchFromJson(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_users, batch.num_users);
  ASSERT_EQ(parsed->documents.size(), batch.documents.size());
  for (size_t k = 0; k < batch.documents.size(); ++k) {
    EXPECT_EQ(parsed->documents[k].user, batch.documents[k].user);
    EXPECT_EQ(parsed->documents[k].time, batch.documents[k].time);
    EXPECT_EQ(parsed->documents[k].text, batch.documents[k].text);
    EXPECT_EQ(parsed->documents[k].tokens, batch.documents[k].tokens);
  }
  ASSERT_EQ(parsed->friendships.size(), batch.friendships.size());
  EXPECT_EQ(parsed->friendships[0], batch.friendships[0]);
  ASSERT_EQ(parsed->diffusions.size(), batch.diffusions.size());
  EXPECT_EQ(parsed->diffusions[0].i, batch.diffusions[0].i);
  EXPECT_EQ(parsed->diffusions[0].j, batch.diffusions[0].j);

  // A round trip through serialized bytes parses identically.
  auto reparsed = Json::Parse(wire.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(UpdateBatchFromJson(*reparsed).ok());
}

TEST(UpdateBatchJson, RejectsMalformedBatches) {
  const auto parse = [](const char* text) {
    auto json = Json::Parse(text);
    CPD_CHECK(json.ok());
    return UpdateBatchFromJson(*json);
  };
  EXPECT_FALSE(parse(R"([1,2,3])").ok());  // Not an object.
  EXPECT_FALSE(parse(R"({"documents":[{"time":0,"text":"x y"}]})").ok())
      << "missing user must be rejected";
  EXPECT_FALSE(
      parse(R"({"documents":[{"user":0,"text":"a b","tokens":["a"]}]})").ok())
      << "text and tokens are mutually exclusive";
  EXPECT_FALSE(parse(R"({"documents":[{"user":0}]})").ok())
      << "one of text/tokens is required";
  EXPECT_FALSE(parse(R"({"documents":[{"user":0.5,"text":"a b"}]})").ok())
      << "fractional ids must be rejected";
  EXPECT_FALSE(parse(R"({"friendships":[{"u":1}]})").ok());
  EXPECT_FALSE(parse(R"({"diffusions":[{"i":1}]})").ok());
  EXPECT_FALSE(parse(R"({"num_users":-3})").ok());
  EXPECT_FALSE(parse(R"({"documents":[{"user":0,"tokens":[1,2]}]})").ok())
      << "tokens must be strings";
}

// ----- merged-graph rebuild -----

TEST(ApplyUpdate, MergesWithStableBaseIdsAndVocabGrowth) {
  const SocialGraph base = testing::MakeHandGraph();  // 4 users, 4 docs.
  UpdateBatch batch;
  batch.num_users = 6;  // Users 4 and 5 are new.
  batch.documents.push_back({4, 3, "", {"apple", "durian", "elderberry"}});
  batch.documents.push_back({0, 3, "", {"banana", "durian"}});
  batch.friendships.push_back({4, 0});
  batch.friendships.push_back({5, 4});   // New user with links only.
  batch.friendships.push_back({0, 1});   // Duplicate of a base link.
  batch.diffusions.push_back({4, 1, 3});  // Batch row 0 diffuses base doc 1.

  auto applied = ApplyUpdate(base, batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  const SocialGraph& merged = applied->graph;

  EXPECT_EQ(merged.num_users(), 6u);
  EXPECT_EQ(merged.num_documents(), 6u);
  // Base documents keep ids, authors, and word ids.
  for (DocId d = 0; d < 4; ++d) {
    EXPECT_EQ(merged.document(d).user, base.document(d).user);
    EXPECT_EQ(merged.document(d).words, base.document(d).words);
  }
  // Batch rows appended in order: ids 4 and 5.
  EXPECT_EQ(applied->batch_doc_ids, (std::vector<DocId>{4, 5}));
  EXPECT_EQ(merged.document(4).user, 4);
  // Vocabulary grew by exactly the two novel words, old ids intact.
  EXPECT_EQ(applied->counts.new_words, 2u);
  EXPECT_EQ(merged.corpus().vocabulary().Find("apple"),
            base.corpus().vocabulary().Find("apple"));
  EXPECT_NE(merged.corpus().vocabulary().Find("durian"), kInvalidWord);

  EXPECT_EQ(applied->counts.new_users, 2u);
  EXPECT_EQ(applied->counts.new_documents, 2u);
  EXPECT_EQ(applied->counts.new_friendships, 2u);  // The duplicate deduped.
  EXPECT_EQ(applied->counts.new_diffusions, 1u);
  // Diffusion row translated: merged doc 4 -> base doc 1.
  const DiffusionLink& added = merged.diffusion_links().back();
  EXPECT_EQ(added.i, 4);
  EXPECT_EQ(added.j, 1);
  // Touched: authors 4, 0 (docs), endpoints 4,0,5 (friendships), authors of
  // diffusion endpoints 4 and 1.
  EXPECT_EQ(applied->touched_users, (std::vector<UserId>{0, 1, 4, 5}));
}

TEST(ApplyUpdate, DroppedBatchRowsSkipTheirDiffusions) {
  const SocialGraph base = testing::MakeHandGraph();
  UpdateBatch batch;
  batch.num_users = 5;
  batch.documents.push_back({4, 0, "", {"apple"}});  // Below min length.
  batch.documents.push_back({4, 0, "", {"apple", "banana"}});
  batch.diffusions.push_back({4, 0, 1});  // Row 0: dropped -> skipped.
  batch.diffusions.push_back({5, 0, 1});  // Row 1: kept.
  auto applied = ApplyUpdate(base, batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->batch_doc_ids,
            (std::vector<DocId>{Corpus::kInvalidDoc, 4}));
  EXPECT_EQ(applied->counts.dropped_documents, 1u);
  EXPECT_EQ(applied->counts.new_documents, 1u);
  EXPECT_EQ(applied->counts.new_diffusions, 1u);
}

TEST(ApplyUpdate, RejectsOutOfRangeReferences) {
  const SocialGraph base = testing::MakeHandGraph();
  {
    UpdateBatch batch;
    batch.num_users = 2;  // Shrinks the 4-user base.
    EXPECT_FALSE(ApplyUpdate(base, batch).ok());
  }
  {
    UpdateBatch batch;
    batch.documents.push_back({9, 0, "", {"a", "b"}});  // User 9 undeclared.
    EXPECT_FALSE(ApplyUpdate(base, batch).ok());
  }
  {
    UpdateBatch batch;
    batch.friendships.push_back({0, 99});
    EXPECT_FALSE(ApplyUpdate(base, batch).ok());
  }
  {
    UpdateBatch batch;
    batch.diffusions.push_back({99, 0, 0});  // Beyond base + batch rows.
    EXPECT_FALSE(ApplyUpdate(base, batch).ok());
  }
  {
    UpdateBatch batch;
    batch.diffusions.push_back({0, 1, -2});  // Negative time.
    EXPECT_FALSE(ApplyUpdate(base, batch).ok());
  }
  {
    UpdateBatch batch;
    batch.documents.push_back({0, -7, "", {"a", "b"}});  // Negative doc time.
    EXPECT_FALSE(ApplyUpdate(base, batch).ok());
  }
}

// ----- warm start -----

/// Cold-trains on `graph` and hands back the trainer (for its assignments).
std::unique_ptr<EmTrainer> ColdTrain(const SocialGraph& graph,
                                     const CpdConfig& config) {
  auto trainer = std::make_unique<EmTrainer>(graph, config);
  CPD_CHECK(trainer->Train().ok());
  return trainer;
}

TEST(ApplyUpdate, DocumentTimeBeyondEveryDiffusionBinTrainsSafely) {
  // num_time_bins derives from diffusion-link times only; a document
  // published in a later bin must read zero popularity, not out of bounds
  // (the M-step's negative sampling indexes the table by document time).
  const SynthResult data = testing::MakeTinyGraph(263);
  UpdateBatch batch;
  batch.num_users = data.graph.num_users() + 1;
  batch.documents.push_back({static_cast<UserId>(data.graph.num_users()),
                             data.graph.num_time_bins() + 50,
                             "",
                             {"late", "arrival", "post"}});
  auto applied = ApplyUpdate(data.graph, batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  CpdConfig config = TinyConfig(59);
  auto cold = ColdTrain(data.graph, config);
  EmTrainer trainer(applied->graph, config);
  WarmStartOptions options;
  options.prev_doc_topic = cold->state().doc_topic;
  options.prev_doc_community = cold->state().doc_community;
  options.touched_users = applied->touched_users;
  options.warm_iterations = 1;
  EXPECT_TRUE(trainer.WarmStart(options).ok());
}

TEST(WarmStart, DegenerateBatchWithNoTouchedUsersRewritesNothing) {
  // A pure user-count bump yields an empty touched set: the warm sweeps
  // must resample nobody (not silently fall back to a full sweep).
  const SynthResult data = testing::MakeTinyGraph(269);
  CpdConfig config = TinyConfig(61);
  auto cold = ColdTrain(data.graph, config);
  const std::vector<int32_t> prev_topic = cold->state().doc_topic;
  const std::vector<int32_t> prev_community = cold->state().doc_community;

  UpdateBatch batch;
  batch.num_users = data.graph.num_users() + 1;
  auto applied = ApplyUpdate(data.graph, batch);
  ASSERT_TRUE(applied.ok());
  ASSERT_TRUE(applied->touched_users.empty());

  EmTrainer trainer(applied->graph, config);
  WarmStartOptions options;
  options.prev_doc_topic = prev_topic;
  options.prev_doc_community = prev_community;
  options.touched_users = applied->touched_users;
  options.warm_iterations = 1;
  ASSERT_TRUE(trainer.WarmStart(options).ok());
  EXPECT_EQ(trainer.state().doc_topic, prev_topic);
  EXPECT_EQ(trainer.state().doc_community, prev_community);
}

TEST(WarmStart, SerialAndPooledAreBitIdentical) {
  const SynthResult data = testing::MakeTinyGraph(211);
  CpdConfig config = TinyConfig(31);
  auto cold = ColdTrain(data.graph, config);

  const UpdateBatch batch = TinyBatch(data.graph, 17);
  auto applied = ApplyUpdate(data.graph, batch);
  ASSERT_TRUE(applied.ok());

  const auto warm_run = [&](ExecutorMode mode, int threads) {
    CpdConfig warm_config = config;
    warm_config.executor_mode = mode;
    warm_config.num_threads = threads;
    warm_config.num_shards = 2;  // Same shard count across modes.
    EmTrainer trainer(applied->graph, warm_config);
    WarmStartOptions options;
    options.prev_doc_topic = cold->state().doc_topic;
    options.prev_doc_community = cold->state().doc_community;
    options.touched_users = applied->touched_users;
    options.warm_iterations = 2;
    CPD_CHECK(trainer.WarmStart(options).ok());
    return std::make_pair(trainer.state().doc_topic,
                          trainer.state().doc_community);
  };
  const auto serial = warm_run(ExecutorMode::kSerial, 1);
  const auto pooled = warm_run(ExecutorMode::kPooled, 2);
  EXPECT_EQ(serial.first, pooled.first) << "topic assignments diverged";
  EXPECT_EQ(serial.second, pooled.second) << "community assignments diverged";
}

TEST(WarmStart, UntouchedUsersKeepTheirAssignmentsAndCountersStayExact) {
  const SynthResult data = testing::MakeTinyGraph(223);
  CpdConfig config = TinyConfig(37);
  auto cold = ColdTrain(data.graph, config);
  const std::vector<int32_t> prev_topic = cold->state().doc_topic;
  const std::vector<int32_t> prev_community = cold->state().doc_community;

  const UpdateBatch batch = TinyBatch(data.graph, 19);
  auto applied = ApplyUpdate(data.graph, batch);
  ASSERT_TRUE(applied.ok());

  EmTrainer trainer(applied->graph, config);
  WarmStartOptions options;
  options.prev_doc_topic = prev_topic;
  options.prev_doc_community = prev_community;
  options.touched_users = applied->touched_users;
  options.warm_iterations = 2;
  ASSERT_TRUE(trainer.WarmStart(options).ok());

  // Documents of untouched users were never resampled.
  const auto touched_set = [&](UserId u) {
    return std::binary_search(applied->touched_users.begin(),
                              applied->touched_users.end(), u);
  };
  size_t untouched_docs = 0;
  for (size_t d = 0; d < data.graph.num_documents(); ++d) {
    const UserId author = applied->graph.document(static_cast<DocId>(d)).user;
    if (touched_set(author)) continue;
    ++untouched_docs;
    EXPECT_EQ(trainer.state().doc_topic[d], prev_topic[d]) << "doc " << d;
    EXPECT_EQ(trainer.state().doc_community[d], prev_community[d])
        << "doc " << d;
  }
  ASSERT_GT(untouched_docs, 0u) << "fixture must leave some users untouched";

  // The warm-start counters (incremental init + delta merges) match a from-
  // scratch rebuild over the final assignments exactly.
  ModelState rebuilt(applied->graph, config);
  rebuilt.doc_topic = trainer.state().doc_topic;
  rebuilt.doc_community = trainer.state().doc_community;
  rebuilt.RebuildCounts(applied->graph);
  EXPECT_EQ(trainer.state().n_uc, rebuilt.n_uc);
  EXPECT_EQ(trainer.state().n_cz, rebuilt.n_cz);
  EXPECT_EQ(trainer.state().n_zw, rebuilt.n_zw);
  EXPECT_EQ(trainer.state().n_z, rebuilt.n_z);
  EXPECT_EQ(trainer.state().n_c, rebuilt.n_c);
  EXPECT_EQ(trainer.state().n_u, rebuilt.n_u);
}

TEST(WarmStart, RejectsMismatchedInputs) {
  const SynthResult data = testing::MakeTinyGraph(229);
  const CpdConfig config = TinyConfig();
  const size_t docs = data.graph.num_documents();
  {
    EmTrainer trainer(data.graph, config);
    WarmStartOptions options;
    std::vector<int32_t> topic(docs + 5, 0), community(docs + 5, 0);
    options.prev_doc_topic = topic;
    options.prev_doc_community = community;
    EXPECT_FALSE(trainer.WarmStart(options).ok())
        << "more previous assignments than documents";
  }
  {
    EmTrainer trainer(data.graph, config);
    WarmStartOptions options;
    std::vector<int32_t> topic(docs, 0), community(docs, 99);  // |C| is 4.
    options.prev_doc_topic = topic;
    options.prev_doc_community = community;
    EXPECT_FALSE(trainer.WarmStart(options).ok())
        << "out-of-range community assignment";
  }
  {
    EmTrainer trainer(data.graph, config);
    WarmStartOptions options;
    std::vector<int32_t> topic(docs, 0), community(docs, 0);
    std::vector<double> eta(3, 0.1);  // Wrong shape.
    options.prev_doc_topic = topic;
    options.prev_doc_community = community;
    options.prev_eta = eta;
    EXPECT_FALSE(trainer.WarmStart(options).ok()) << "eta shape mismatch";
  }
}

// ----- warm-vs-cold quality -----

double Perplexity(const SocialGraph& graph, const CpdModel& model) {
  std::vector<std::vector<double>> pi(model.num_users());
  for (size_t u = 0; u < model.num_users(); ++u) {
    const auto row = model.Membership(static_cast<UserId>(u));
    pi[u].assign(row.begin(), row.end());
  }
  std::vector<std::vector<double>> theta(
      static_cast<size_t>(model.num_communities()));
  for (int c = 0; c < model.num_communities(); ++c) {
    const auto row = model.ContentProfile(c);
    theta[static_cast<size_t>(c)].assign(row.begin(), row.end());
  }
  std::vector<std::vector<double>> phi(
      static_cast<size_t>(model.num_topics()));
  for (int z = 0; z < model.num_topics(); ++z) {
    const auto row = model.TopicWords(z);
    phi[static_cast<size_t>(z)].assign(row.begin(), row.end());
  }
  std::vector<DocId> docs(graph.num_documents());
  for (size_t d = 0; d < docs.size(); ++d) docs[d] = static_cast<DocId>(d);
  return ContentPerplexity(graph, docs, pi, theta, phi);
}

TEST(WarmStart, QualityIsWithinToleranceOfAColdRetrainOnTheMergedCorpus) {
  const SynthResult data = testing::MakeTinyGraph(233);
  CpdConfig config = TinyConfig(41);
  auto base_model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(base_model.ok());

  const UpdateBatch batch = TinyBatch(data.graph, 23);
  auto graph_alias = std::shared_ptr<const SocialGraph>(
      &data.graph, [](const SocialGraph*) {});
  IngestOptions options;
  options.config = config;
  options.warm_iterations = 2;
  auto pipeline = IngestPipeline::Create(graph_alias, *base_model, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  const std::string artifact =
      ::testing::TempDir() + "/ingest_quality.cpdb";
  auto result = (*pipeline)->Ingest(batch, artifact);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto warm_model = (*pipeline)->model();
  const auto merged = (*pipeline)->graph();

  auto cold_model = CpdModel::Train(*merged, config);
  ASSERT_TRUE(cold_model.ok());

  const double warm_ppl = Perplexity(*merged, *warm_model);
  const double cold_ppl = Perplexity(*merged, *cold_model);
  EXPECT_LT(warm_ppl, cold_ppl * 1.25)
      << "warm perplexity " << warm_ppl << " vs cold " << cold_ppl;

  const double warm_ll = result->link_log_likelihood;
  const double cold_ll = cold_model->stats().link_log_likelihood.back();
  ASSERT_LT(cold_ll, 0.0);
  EXPECT_GT(warm_ll, cold_ll * 1.25)  // LLs are negative: 25% slack.
      << "warm link LL " << warm_ll << " vs cold " << cold_ll;
  std::filesystem::remove(artifact);
}

// ----- pipeline chain -----

TEST(IngestPipeline, SequentialIngestsProduceLoadableGrowingArtifacts) {
  const SynthResult data = testing::MakeTinyGraph(239);
  CpdConfig config = TinyConfig(43);
  auto base_model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(base_model.ok());
  const size_t base_users = data.graph.num_users();
  const size_t base_vocab = data.graph.vocabulary_size();

  auto graph_alias = std::shared_ptr<const SocialGraph>(
      &data.graph, [](const SocialGraph*) {});
  IngestOptions options;
  options.config = config;
  options.warm_iterations = 1;
  options.artifact_base = ::testing::TempDir() + "/ingest_chain";
  auto pipeline = IngestPipeline::Create(graph_alias, *base_model, options);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ((*pipeline)->sequence(), 0u);

  // Two consecutive batches; the second builds on the first's merged graph.
  std::vector<std::string> artifacts;
  for (const uint64_t seed : {29u, 31u}) {
    const UpdateBatch batch = TinyBatch(*(*pipeline)->graph(), seed);
    auto result = (*pipeline)->Ingest(batch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    artifacts.push_back(result->artifact_path);
  }
  EXPECT_EQ((*pipeline)->sequence(), 2u);
  EXPECT_EQ(artifacts[0], options.artifact_base + ".g1.cpdb");
  EXPECT_EQ(artifacts[1], options.artifact_base + ".g2.cpdb");
  EXPECT_EQ((*pipeline)->graph()->num_users(), base_users + 6);
  EXPECT_GT((*pipeline)->graph()->vocabulary_size(), base_vocab);

  // The final artifact serves membership for a user that did not exist in
  // the base graph (the end-to-end "previously-unknown user" guarantee).
  auto bundle = serve::LoadModelBundle(artifacts[1], {});
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ASSERT_NE(bundle->vocabulary, nullptr) << "v2 artifact bundles the vocab";
  EXPECT_EQ(bundle->index.num_users(), base_users + 6);
  serve::QueryEngine engine(bundle->index);
  serve::MembershipRequest request;
  request.user = static_cast<UserId>(base_users + 5);  // Newest user.
  request.top_k = 2;
  auto response = engine.Membership(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->top.empty());

  // A failed batch leaves the live state untouched.
  UpdateBatch bad;
  bad.documents.push_back({-5, 0, "", {"a", "b"}});
  EXPECT_FALSE((*pipeline)->Ingest(bad).ok());
  EXPECT_EQ((*pipeline)->sequence(), 2u);

  for (const std::string& path : artifacts) std::filesystem::remove(path);
}

TEST(IngestPipeline, CreateRejectsMismatchedModelGraphOrConfig) {
  const SynthResult data = testing::MakeTinyGraph(241);
  CpdConfig config = TinyConfig(47);
  auto model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(model.ok());
  auto graph_alias = std::shared_ptr<const SocialGraph>(
      &data.graph, [](const SocialGraph*) {});
  {
    IngestOptions options;
    options.config = config;
    options.config.num_communities = 9;  // Model was trained with 4.
    EXPECT_FALSE(IngestPipeline::Create(graph_alias, *model, options).ok());
  }
  {
    const SocialGraph other = testing::MakeHandGraph();
    auto other_alias = std::shared_ptr<const SocialGraph>(
        &other, [](const SocialGraph*) {});
    IngestOptions options;
    options.config = config;
    EXPECT_FALSE(IngestPipeline::Create(other_alias, *model, options).ok());
  }
}

TEST(ReconstructAssignments, ProducesValidRangesDeterministically) {
  const SynthResult data = testing::MakeTinyGraph(251);
  CpdConfig config = TinyConfig(53);
  auto model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(model.ok());
  const auto a = ingest::ReconstructAssignments(data.graph, *model, 99);
  const auto b = ingest::ReconstructAssignments(data.graph, *model, 99);
  ASSERT_EQ(a.doc_topic.size(), data.graph.num_documents());
  EXPECT_EQ(a.doc_topic, b.doc_topic) << "same seed, same reconstruction";
  EXPECT_EQ(a.doc_community, b.doc_community);
  for (size_t d = 0; d < a.doc_topic.size(); ++d) {
    ASSERT_GE(a.doc_topic[d], 0);
    ASSERT_LT(a.doc_topic[d], config.num_topics);
    ASSERT_GE(a.doc_community[d], 0);
    ASSERT_LT(a.doc_community[d], config.num_communities);
  }
}

}  // namespace
}  // namespace cpd
