#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "synth/generator.h"
#include "test_util.h"
#include "util/math_util.h"

namespace cpd {
namespace {

TEST(SynthTest, DeterministicGivenSeed) {
  auto a = GenerateSocialGraph(testing::TinySynthConfig(5));
  auto b = GenerateSocialGraph(testing::TinySynthConfig(5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.num_documents(), b->graph.num_documents());
  EXPECT_EQ(a->graph.num_friendship_links(), b->graph.num_friendship_links());
  EXPECT_EQ(a->graph.num_diffusion_links(), b->graph.num_diffusion_links());
  EXPECT_EQ(a->truth.user_community, b->truth.user_community);
  // Spot-check a document.
  EXPECT_EQ(a->graph.document(0).words, b->graph.document(0).words);
}

TEST(SynthTest, DifferentSeedsDiffer) {
  auto a = GenerateSocialGraph(testing::TinySynthConfig(5));
  auto b = GenerateSocialGraph(testing::TinySynthConfig(6));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->truth.user_community, b->truth.user_community);
}

TEST(SynthTest, SizesTrackConfig) {
  const SynthConfig config = testing::TinySynthConfig();
  auto result = GenerateSocialGraph(config);
  ASSERT_TRUE(result.ok());
  const SocialGraph& graph = result->graph;
  EXPECT_EQ(graph.num_users(), static_cast<size_t>(config.num_users));
  EXPECT_GE(graph.num_documents(), graph.num_users());  // >= 1 doc per user.
  EXPECT_GT(graph.num_friendship_links(), graph.num_users());
  EXPECT_GT(graph.num_diffusion_links(), 0u);
  // Diffusion target is approximate (acceptance sampling).
  EXPECT_LT(graph.num_diffusion_links(), graph.num_documents());
}

TEST(SynthTest, GroundTruthShapes) {
  auto result = GenerateSocialGraph(testing::TinySynthConfig());
  ASSERT_TRUE(result.ok());
  const SynthGroundTruth& truth = result->truth;
  EXPECT_EQ(truth.pi.size(), result->graph.num_users());
  EXPECT_EQ(truth.theta.size(), static_cast<size_t>(truth.num_communities));
  EXPECT_EQ(truth.phi.size(), static_cast<size_t>(truth.num_topics));
  for (const auto& pi : truth.pi) {
    double total = 0.0;
    for (double p : pi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (const auto& theta : truth.theta) {
    double total = 0.0;
    for (double p : theta) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (const auto& phi : truth.phi) {
    double total = 0.0;
    for (double p : phi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
  // Eta rows normalized.
  for (int c = 0; c < truth.num_communities; ++c) {
    double total = 0.0;
    for (int c2 = 0; c2 < truth.num_communities; ++c2) {
      for (int z = 0; z < truth.num_topics; ++z) total += truth.EtaAt(c, c2, z);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SynthTest, FriendshipsRespectCommunities) {
  auto result = GenerateSocialGraph(testing::TinySynthConfig());
  ASSERT_TRUE(result.ok());
  size_t intra = 0;
  const auto& links = result->graph.friendship_links();
  for (const FriendshipLink& link : links) {
    if (result->truth.user_community[static_cast<size_t>(link.u)] ==
        result->truth.user_community[static_cast<size_t>(link.v)]) {
      ++intra;
    }
  }
  // With intra_community_fraction = 0.85 and 4 communities, the intra share
  // should be far above the 1/4 random baseline.
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(links.size()), 0.6);
}

TEST(SynthTest, DiffusionRespectsCausality) {
  auto result = GenerateSocialGraph(testing::TinySynthConfig());
  ASSERT_TRUE(result.ok());
  for (const DiffusionLink& link : result->graph.diffusion_links()) {
    EXPECT_GE(result->graph.document(link.i).time,
              result->graph.document(link.j).time)
        << "diffusing doc must not precede its source";
    EXPECT_EQ(link.time, result->graph.document(link.i).time);
  }
}

TEST(SynthTest, SociabilityCorrelatesWithDiffusionActivity) {
  // The planted individual factor (Fig. 5(a)'s premise): more sociable
  // users make more diffusions.
  SynthConfig config = testing::TinySynthConfig(77);
  config.num_users = 150;
  config.diffusion_per_doc = 0.8;
  auto result = GenerateSocialGraph(config);
  ASSERT_TRUE(result.ok());
  std::vector<double> sociability, diffusions;
  for (size_t u = 0; u < result->graph.num_users(); ++u) {
    sociability.push_back(result->truth.sociability[u]);
    diffusions.push_back(
        static_cast<double>(result->graph.activity(static_cast<UserId>(u)).diffusions));
  }
  EXPECT_GT(PearsonCorrelation(sociability, diffusions), 0.15);
}

TEST(SynthTest, ThemedWordsDominateTopics) {
  auto result = GenerateSocialGraph(testing::TinySynthConfig());
  ASSERT_TRUE(result.ok());
  // Top word of each planted topic must come from its theme list.
  const Vocabulary& vocab = result->graph.corpus().vocabulary();
  for (int z = 0; z < result->truth.num_topics; ++z) {
    const auto& phi = result->truth.phi[static_cast<size_t>(z)];
    const size_t top = ArgMax(phi);
    const std::string& word = vocab.WordOf(static_cast<WordId>(top));
    const auto& theme = ThemeWords(z % kNumThemes);
    EXPECT_NE(std::find(theme.begin(), theme.end(), word), theme.end())
        << "topic " << z << " top word " << word;
  }
}

TEST(SynthTest, TwitterPresetHasHashtags) {
  SynthConfig config = SynthConfig::TwitterLike().Scaled(0.15);
  auto result = GenerateSocialGraph(config);
  ASSERT_TRUE(result.ok());
  const Vocabulary& vocab = result->graph.corpus().vocabulary();
  bool found_hashtag = false;
  for (size_t w = 0; w < vocab.size() && !found_hashtag; ++w) {
    if (!vocab.WordOf(static_cast<WordId>(w)).empty() &&
        vocab.WordOf(static_cast<WordId>(w))[0] == '#' &&
        vocab.Frequency(static_cast<WordId>(w)) > 0) {
      found_hashtag = true;
    }
  }
  EXPECT_TRUE(found_hashtag);
}

TEST(SynthTest, DblpPresetIsSymmetric) {
  SynthConfig config = SynthConfig::DBLPLike().Scaled(0.1);
  auto result = GenerateSocialGraph(config);
  ASSERT_TRUE(result.ok());
  for (const FriendshipLink& link : result->graph.friendship_links()) {
    EXPECT_TRUE(result->graph.HasFriendship(link.v, link.u))
        << "co-authorship must be symmetric";
  }
}

TEST(SynthTest, InvalidConfigsRejected) {
  SynthConfig config = testing::TinySynthConfig();
  config.num_users = 1;
  EXPECT_FALSE(GenerateSocialGraph(config).ok());
  config = testing::TinySynthConfig();
  config.doc_length_min = 1;
  EXPECT_FALSE(GenerateSocialGraph(config).ok());
  config = testing::TinySynthConfig();
  config.num_time_bins = 1;
  EXPECT_FALSE(GenerateSocialGraph(config).ok());
}

}  // namespace
}  // namespace cpd
