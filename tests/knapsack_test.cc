#include <gtest/gtest.h>

#include <numeric>

#include "parallel/knapsack.h"
#include "util/rng.h"

namespace cpd {
namespace {

TEST(Knapsack01Test, PicksOptimalSubset) {
  // Capacity 10; best subset is {6, 4} = 10.
  const std::vector<double> weights = {6.0, 4.0, 7.0, 9.0};
  const auto chosen = SolveKnapsack01(weights, 10.0);
  double total = 0.0;
  for (size_t i : chosen) total += weights[i];
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(Knapsack01Test, RespectsCapacity) {
  Rng rng(3);
  std::vector<double> weights(30);
  for (double& w : weights) w = rng.NextDouble() * 10.0;
  const double capacity = 25.0;
  const auto chosen = SolveKnapsack01(weights, capacity);
  double total = 0.0;
  for (size_t i : chosen) total += weights[i];
  // Round-to-nearest discretization can overshoot by half a bucket per item.
  const double slack =
      capacity * static_cast<double>(chosen.size()) / (2.0 * 4096.0);
  EXPECT_LE(total, capacity + slack + 1e-9);
  EXPECT_GT(total, capacity * 0.8);  // DP should pack close to capacity.
}

TEST(Knapsack01Test, OversizedItemsSkipped) {
  const std::vector<double> weights = {100.0, 3.0};
  const auto chosen = SolveKnapsack01(weights, 10.0);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], 1u);
}

TEST(Knapsack01Test, EmptyInputs) {
  EXPECT_TRUE(SolveKnapsack01({}, 10.0).empty());
  EXPECT_TRUE(SolveKnapsack01({1.0}, 0.0).empty());
}

TEST(AllocationTest, KnapsackCoversAllSegments) {
  Rng rng(5);
  std::vector<double> workloads(24);
  for (double& w : workloads) w = 1.0 + rng.NextDouble() * 9.0;
  const auto allocation = AllocateSegmentsKnapsack(workloads, 4);
  ASSERT_EQ(allocation.thread_of_segment.size(), 24u);
  for (int t : allocation.thread_of_segment) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 4);
  }
  // Workload bookkeeping matches assignment.
  std::vector<double> recomputed(4, 0.0);
  for (size_t s = 0; s < workloads.size(); ++s) {
    recomputed[static_cast<size_t>(allocation.thread_of_segment[s])] += workloads[s];
  }
  for (int t = 0; t < 4; ++t) {
    EXPECT_NEAR(recomputed[static_cast<size_t>(t)],
                allocation.thread_workload[static_cast<size_t>(t)], 1e-9);
  }
}

TEST(AllocationTest, KnapsackBalancesWell) {
  Rng rng(7);
  std::vector<double> workloads(32);
  for (double& w : workloads) w = 1.0 + rng.NextDouble() * 5.0;
  const auto allocation = AllocateSegmentsKnapsack(workloads, 8);
  // Eq. 17 targets O/M per thread; imbalance must be modest.
  EXPECT_LT(allocation.Imbalance(), 1.35);
}

TEST(AllocationTest, GreedyBaselineAlsoBalances) {
  Rng rng(9);
  std::vector<double> workloads(32);
  for (double& w : workloads) w = 1.0 + rng.NextDouble() * 5.0;
  const auto allocation = AllocateSegmentsGreedy(workloads, 8);
  EXPECT_LT(allocation.Imbalance(), 1.5);
  for (int t : allocation.thread_of_segment) EXPECT_GE(t, 0);
}

TEST(AllocationTest, SkewedWorkloadsHandled) {
  // One huge segment plus many small ones (the data-skew case of §4.3).
  std::vector<double> workloads = {100.0};
  for (int i = 0; i < 20; ++i) workloads.push_back(1.0);
  const auto allocation = AllocateSegmentsKnapsack(workloads, 4);
  // The huge segment should sit alone-ish; every segment assigned.
  for (int t : allocation.thread_of_segment) EXPECT_GE(t, 0);
  const double total = std::accumulate(workloads.begin(), workloads.end(), 0.0);
  double assigned = 0.0;
  for (double w : allocation.thread_workload) assigned += w;
  EXPECT_NEAR(assigned, total, 1e-9);
}

TEST(AllocationTest, MoreThreadsThanSegments) {
  const std::vector<double> workloads = {3.0, 2.0};
  const auto allocation = AllocateSegmentsKnapsack(workloads, 8);
  for (int t : allocation.thread_of_segment) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 8);
  }
}

TEST(AllocationTest, ImbalanceOfEmptyIsOne) {
  SegmentAllocation allocation;
  EXPECT_DOUBLE_EQ(allocation.Imbalance(), 1.0);
}

}  // namespace
}  // namespace cpd
