#include <gtest/gtest.h>

#include "test_util.h"
#include "topic/lda.h"
#include "util/rng.h"

namespace cpd {
namespace {

// Two perfectly separable planted topics.
Corpus MakeSeparableCorpus(int docs_per_topic = 30) {
  Corpus corpus;
  Vocabulary vocab;
  std::vector<WordId> topic_a, topic_b;
  for (int i = 0; i < 6; ++i) {
    topic_a.push_back(vocab.GetOrAdd("cat" + std::to_string(i)));
    topic_b.push_back(vocab.GetOrAdd("dog" + std::to_string(i)));
  }
  corpus.SetVocabulary(vocab);
  Rng rng(3);
  for (int d = 0; d < docs_per_topic; ++d) {
    std::vector<WordId> wa, wb;
    for (int k = 0; k < 6; ++k) {
      wa.push_back(topic_a[rng.NextUint64(topic_a.size())]);
      wb.push_back(topic_b[rng.NextUint64(topic_b.size())]);
    }
    corpus.AddTokenizedDocument(static_cast<UserId>(d % 4), 0, wa);
    corpus.AddTokenizedDocument(static_cast<UserId>(4 + d % 4), 0, wb);
  }
  return corpus;
}

TEST(LdaTest, RecoverSeparableTopics) {
  const Corpus corpus = MakeSeparableCorpus();
  LdaConfig config;
  config.num_topics = 2;
  config.iterations = 60;
  auto model = LdaModel::Train(corpus, config);
  ASSERT_TRUE(model.ok());

  // Every "cat" doc should be dominated by one topic, "dog" by the other.
  const auto theta0 = model->DocumentTopics(0);  // cat doc
  const auto theta1 = model->DocumentTopics(1);  // dog doc
  const int z_cat = theta0[0] > theta0[1] ? 0 : 1;
  const int z_dog = 1 - z_cat;
  EXPECT_GT(theta0[static_cast<size_t>(z_cat)], 0.8);
  EXPECT_GT(theta1[static_cast<size_t>(z_dog)], 0.8);

  // Top words of the cat topic are cat words.
  const auto top = model->TopWords(z_cat, 3);
  for (WordId w : top) {
    EXPECT_EQ(corpus.vocabulary().WordOf(w).substr(0, 3), "cat");
  }
}

TEST(LdaTest, DistributionsNormalized) {
  const Corpus corpus = MakeSeparableCorpus(10);
  LdaConfig config;
  config.num_topics = 3;
  config.iterations = 10;
  auto model = LdaModel::Train(corpus, config);
  ASSERT_TRUE(model.ok());
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    const auto theta = model->DocumentTopics(static_cast<DocId>(d));
    double total = 0.0;
    for (double p : theta) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int z = 0; z < 3; ++z) {
    const auto phi = model->TopicWords(z);
    double total = 0.0;
    for (double p : phi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(LdaTest, PerplexityBeatsUniform) {
  const Corpus corpus = MakeSeparableCorpus();
  LdaConfig config;
  config.num_topics = 2;
  config.iterations = 50;
  auto model = LdaModel::Train(corpus, config);
  ASSERT_TRUE(model.ok());
  std::vector<DocId> docs;
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    docs.push_back(static_cast<DocId>(d));
  }
  const double perplexity = model->Perplexity(corpus, docs);
  // Uniform model perplexity = vocabulary size (12); planted structure means
  // roughly 6 effective words per topic.
  EXPECT_LT(perplexity, 9.0);
  EXPECT_GT(perplexity, 1.0);
}

TEST(LdaTest, DominantTopicOfUserFollowsContent) {
  const Corpus corpus = MakeSeparableCorpus();
  LdaConfig config;
  config.num_topics = 2;
  config.iterations = 50;
  auto model = LdaModel::Train(corpus, config);
  ASSERT_TRUE(model.ok());
  // Users 0-3 wrote cat docs, 4-7 dog docs.
  const int cat_topic = model->DominantTopicOfUser(corpus, 0);
  for (UserId u = 1; u < 4; ++u) {
    EXPECT_EQ(model->DominantTopicOfUser(corpus, u), cat_topic);
  }
  for (UserId u = 4; u < 8; ++u) {
    EXPECT_EQ(model->DominantTopicOfUser(corpus, u), 1 - cat_topic);
  }
}

TEST(LdaTest, InvalidConfigRejected) {
  const Corpus corpus = MakeSeparableCorpus(5);
  LdaConfig config;
  config.num_topics = 0;
  EXPECT_FALSE(LdaModel::Train(corpus, config).ok());
  config.num_topics = 2;
  config.iterations = 0;
  EXPECT_FALSE(LdaModel::Train(corpus, config).ok());
}

TEST(LdaTest, EmptyCorpusRejected) {
  Corpus corpus;
  LdaConfig config;
  EXPECT_FALSE(LdaModel::Train(corpus, config).ok());
}

}  // namespace
}  // namespace cpd
