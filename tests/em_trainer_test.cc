#include <gtest/gtest.h>

#include <cmath>

#include "core/em_trainer.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace cpd {
namespace {

CpdConfig TrainerConfig() {
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 6;
  config.gibbs_sweeps_per_em = 1;
  config.nu_iterations = 30;
  config.seed = 9;
  return config;
}

TEST(EmTrainerTest, TrainRunsAndTracksLikelihood) {
  const SynthResult data = testing::MakeTinyGraph();
  EmTrainer trainer(data.graph, TrainerConfig());
  ASSERT_TRUE(trainer.Train().ok());
  const TrainStats& stats = trainer.stats();
  ASSERT_EQ(stats.link_log_likelihood.size(), 6u);
  for (double ll : stats.link_log_likelihood) {
    EXPECT_TRUE(std::isfinite(ll));
    EXPECT_LT(ll, 0.0);  // Log-likelihood of Bernoulli links.
  }
  EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(EmTrainerTest, LinkLikelihoodImprovesOverTraining) {
  const SynthResult data = testing::MakeTinyGraph();
  EmTrainer trainer(data.graph, TrainerConfig());
  ASSERT_TRUE(trainer.Train().ok());
  const auto& ll = trainer.stats().link_log_likelihood;
  // Sampled likelihood is noisy; require the last iterate to beat the first.
  EXPECT_GT(ll.back(), ll.front());
}

TEST(EmTrainerTest, EtaRowsAreNormalized) {
  const SynthResult data = testing::MakeTinyGraph();
  CpdConfig config = TrainerConfig();
  EmTrainer trainer(data.graph, config);
  ASSERT_TRUE(trainer.Train().ok());
  const ModelState& state = trainer.state();
  for (int c = 0; c < config.num_communities; ++c) {
    double total = 0.0;
    for (int c2 = 0; c2 < config.num_communities; ++c2) {
      for (int z = 0; z < config.num_topics; ++z) {
        const double value = state.EtaAt(c, c2, z);
        EXPECT_GE(value, 0.0);
        total += value;
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-6) << "community " << c;
  }
}

TEST(EmTrainerTest, DiffusionWeightsAreLearned) {
  const SynthResult data = testing::MakeTinyGraph();
  EmTrainer trainer(data.graph, TrainerConfig());
  ASSERT_TRUE(trainer.Train().ok());
  const auto& weights = trainer.state().weights;
  ASSERT_EQ(weights.size(), static_cast<size_t>(kNumDiffusionWeights));
  // The logistic regression must move the bias off its zero init (negatives
  // dominate the base rate).
  EXPECT_NE(weights[kWeightBias], 0.0);
  for (double w : weights) EXPECT_TRUE(std::isfinite(w));
}

TEST(EmTrainerTest, NoJointTwoPhaseFreezesCommunities) {
  const SynthResult data = testing::MakeTinyGraph();
  CpdConfig config = TrainerConfig();
  config.ablation.joint_profiling = false;
  EmTrainer trainer(data.graph, config);
  ASSERT_TRUE(trainer.Train().ok());
  // Phase B freezes communities: run one more E-step and verify they hold.
  const std::vector<int32_t> before = trainer.state().doc_community;
  ASSERT_TRUE(trainer.EStep().ok());
  EXPECT_EQ(trainer.state().doc_community, before);
}

TEST(EmTrainerTest, ParallelTrainingMatchesSerialQuality) {
  const SynthResult data = testing::MakeTinyGraph();

  CpdConfig serial_config = TrainerConfig();
  EmTrainer serial(data.graph, serial_config);
  ASSERT_TRUE(serial.Train().ok());

  CpdConfig parallel_config = TrainerConfig();
  parallel_config.num_threads = 4;
  EmTrainer parallel(data.graph, parallel_config);
  ASSERT_TRUE(parallel.Train().ok());

  // Parallel inference is approximate (stale reads) but must land in the
  // same quality regime: final link log-likelihoods within 20%.
  const double serial_ll = serial.stats().link_log_likelihood.back();
  const double parallel_ll = parallel.stats().link_log_likelihood.back();
  EXPECT_LT(std::fabs(parallel_ll - serial_ll) / std::fabs(serial_ll), 0.2);

  // Fig. 11 data recorded.
  EXPECT_EQ(parallel.stats().thread_estimated_workload.size(), 4u);
  EXPECT_EQ(parallel.stats().thread_actual_seconds.size(), 4u);
  EXPECT_GT(parallel.stats().num_segments, 0u);
}

TEST(EmTrainerTest, RecoversPlantedCommunitiesBetterThanChance) {
  // Slightly larger than the tiny fixture: 60-user/degree-6 graphs sit at
  // the detectability threshold and recovery is seed-dependent there.
  SynthConfig synth_config = testing::TinySynthConfig(123);
  synth_config.num_users = 150;
  synth_config.avg_friend_degree = 10.0;
  auto generated = GenerateSocialGraph(synth_config);
  ASSERT_TRUE(generated.ok());
  const SynthResult& data = *generated;
  CpdConfig config = TrainerConfig();
  config.em_iterations = 12;
  config.gibbs_sweeps_per_em = 4;
  EmTrainer trainer(data.graph, config);
  ASSERT_TRUE(trainer.Train().ok());

  // Hard per-user label = argmax community by doc counts.
  const ModelState& state = trainer.state();
  std::vector<int> predicted(data.graph.num_users());
  for (size_t u = 0; u < data.graph.num_users(); ++u) {
    int best = 0;
    for (int c = 1; c < config.num_communities; ++c) {
      if (state.n_uc[u * static_cast<size_t>(config.num_communities) +
                     static_cast<size_t>(c)] >
          state.n_uc[u * static_cast<size_t>(config.num_communities) +
                     static_cast<size_t>(best)]) {
        best = c;
      }
    }
    predicted[u] = best;
  }
  const double nmi =
      NormalizedMutualInformation(predicted, data.truth.user_community);
  EXPECT_GT(nmi, 0.25) << "planted community recovery too weak";
}

TEST(EmTrainerTest, InvalidConfigRejected) {
  const SynthResult data = testing::MakeTinyGraph();
  CpdConfig config = TrainerConfig();
  config.num_communities = 0;
  EmTrainer trainer(data.graph, config);
  EXPECT_FALSE(trainer.Train().ok());
}

TEST(EmTrainerTest, EmptyGraphRejected) {
  SocialGraph empty;
  EmTrainer trainer(empty, TrainerConfig());
  EXPECT_FALSE(trainer.Train().ok());
}

}  // namespace
}  // namespace cpd
