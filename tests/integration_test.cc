#include <gtest/gtest.h>

#include "apps/community_ranking.h"
#include "apps/diffusion_prediction.h"
#include "baselines/cold.h"
#include "core/cpd_model.h"
#include "eval/cross_validation.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "synth/queries.h"
#include "test_util.h"

namespace cpd {
namespace {

// End-to-end pipeline on one held-out fold: generate -> split -> train ->
// evaluate all three tasks. This is the core claim of the paper in miniature:
// joint CPD beats the COLD-style restricted model on diffusion prediction and
// friendship prediction.
TEST(IntegrationTest, FullPipelineCpdBeatsRestrictedModel) {
  SynthConfig synth_config = testing::TinySynthConfig(201);
  synth_config.num_users = 120;
  synth_config.docs_per_user_mean = 5.0;
  synth_config.diffusion_per_doc = 0.6;
  synth_config.avg_friend_degree = 10.0;  // Degree 6 sits at detectability.
  auto data = GenerateSocialGraph(synth_config);
  ASSERT_TRUE(data.ok());
  const SocialGraph& graph = data->graph;

  Rng rng(203);
  const LinkFolds folds = AssignLinkFolds(graph, 10, &rng);
  auto fold = BuildFold(graph, folds, 0);
  ASSERT_TRUE(fold.ok());

  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  // The default sparse (MH) backend trades per-sweep mixing for throughput;
  // on this tiny fold it needs a few more EM iterations than the dense
  // reference did to crystallize communities.
  config.em_iterations = 18;
  config.seed = 205;
  auto cpd = CpdModel::Train(fold->train_graph, config);
  ASSERT_TRUE(cpd.ok());

  ColdConfig cold_config;
  cold_config.num_communities = 4;
  cold_config.num_topics = 6;
  cold_config.em_iterations = 8;
  cold_config.seed = 205;
  auto cold = ColdModel::Train(fold->train_graph, cold_config);
  ASSERT_TRUE(cold.ok());

  DiffusionPredictor cpd_predictor(*cpd, fold->train_graph);

  Rng eval_rng(207);
  const double cpd_diff_auc = EvaluateDiffusionAuc(
      graph, fold->heldout_diffusion, cpd_predictor.AsDiffusionScorer(),
      &eval_rng);
  Rng eval_rng2(207);
  const double cold_diff_auc = EvaluateDiffusionAuc(
      graph, fold->heldout_diffusion,
      cold->AsDiffusionScorer(fold->train_graph), &eval_rng2);

  Rng eval_rng3(209);
  const double cpd_friend_auc = EvaluateFriendshipAuc(
      graph, fold->heldout_friendship, cpd_predictor.AsFriendshipScorer(),
      &eval_rng3);

  // CPD must comfortably beat chance on both tasks.
  EXPECT_GT(cpd_diff_auc, 0.6);
  EXPECT_GT(cpd_friend_auc, 0.6);
  // And at least match the friendship-blind, factor-blind COLD on diffusion.
  EXPECT_GE(cpd_diff_auc, cold_diff_auc - 0.02);
}

TEST(IntegrationTest, RankingFindsRelevantCommunities) {
  const SynthResult data = testing::MakeTinyGraph(211);
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 6;
  config.seed = 213;
  auto model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(model.ok());

  Rng rng(215);
  QueryOptions query_options;
  query_options.min_frequency = 5;
  query_options.min_relevant_users = 3;
  query_options.max_queries = 10;
  const auto queries = BuildRankingQueries(data.graph, query_options, &rng);
  ASSERT_FALSE(queries.empty());

  CommunityRanker ranker(*model);
  const auto community_users = CommunityRanker::CommunityUserSets(*model, 2);
  std::vector<std::vector<RankingPoint>> per_query;
  for (const RankingQuery& query : queries) {
    const std::vector<WordId> words = {query.word};
    const auto ranked_communities = ranker.Rank(words);
    std::vector<int> order;
    for (const RankedCommunity& entry : ranked_communities) {
      order.push_back(entry.community);
    }
    per_query.push_back(
        EvaluateRanking(order, community_users, query.relevant_users, 4));
  }
  const auto metrics = AggregateRankings(per_query, 4);
  // Recall grows with K and the curve is non-trivial.
  EXPECT_GT(metrics.maf_at_k[3], 0.1);
  EXPECT_GE(metrics.mar_at_k[3], metrics.mar_at_k[0] - 1e-12);
}

TEST(IntegrationTest, ProfilesExplainContentBetterThanUniform) {
  const SynthResult data = testing::MakeTinyGraph(217);
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 6;
  auto model = CpdModel::Train(data.graph, config);
  ASSERT_TRUE(model.ok());

  std::vector<std::vector<double>> pi(data.graph.num_users());
  for (size_t u = 0; u < pi.size(); ++u) {
    const auto row = model->Membership(static_cast<UserId>(u));
    pi[u].assign(row.begin(), row.end());
  }
  std::vector<std::vector<double>> theta(4), phi(6);
  for (int c = 0; c < 4; ++c) {
    const auto row = model->ContentProfile(c);
    theta[static_cast<size_t>(c)].assign(row.begin(), row.end());
  }
  for (int z = 0; z < 6; ++z) {
    const auto row = model->TopicWords(z);
    phi[static_cast<size_t>(z)].assign(row.begin(), row.end());
  }

  std::vector<DocId> docs;
  for (size_t d = 0; d < data.graph.num_documents(); d += 2) {
    docs.push_back(static_cast<DocId>(d));
  }
  const double trained = ContentPerplexity(data.graph, docs, pi, theta, phi);
  const size_t v = data.graph.vocabulary_size();
  std::vector<std::vector<double>> uniform_phi(
      6, std::vector<double>(v, 1.0 / static_cast<double>(v)));
  const double uniform = ContentPerplexity(data.graph, docs, pi, theta, uniform_phi);
  EXPECT_LT(trained, uniform * 0.5);
}

}  // namespace
}  // namespace cpd
