// Table-driven pin of the unified error envelope: every non-2xx JSON
// response — typed handler errors, admission 429s, deadline 504s, and the
// transport's framing 400/413/431 — is exactly
//   {"error":{"code":"<StatusCode name>","message":...}}
// with "retry_after_ms" on load-shed 429s and nowhere else
// (docs/HTTP_API.md documents this shape; MakeErrorResponse renders it).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cpd_model.h"
#include "server/http_server.h"
#include "server/json_api.h"
#include "server/model_registry.h"
#include "test_util.h"
#include "util/json.h"

namespace cpd {
namespace {

using server::HttpClient;
using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::HttpServerOptions;

constexpr const char* kHost = "127.0.0.1";

/// Asserts `body` is the envelope with `code` (and, when asked, a positive
/// retry_after_ms — absent otherwise).
void ExpectEnvelope(const std::string& body, const std::string& code,
                    bool expect_retry_after = false) {
  auto json = Json::Parse(body);
  ASSERT_TRUE(json.ok()) << body;
  ASSERT_TRUE(json->is_object()) << body;
  const Json* error = json->Find("error");
  ASSERT_NE(error, nullptr) << body;
  const Json* code_json = error->Find("code");
  const Json* message_json = error->Find("message");
  ASSERT_NE(code_json, nullptr) << body;
  ASSERT_NE(message_json, nullptr) << body;
  EXPECT_EQ(code_json->string_value(), code) << body;
  EXPECT_FALSE(message_json->string_value().empty()) << body;
  const Json* retry = error->Find("retry_after_ms");
  if (expect_retry_after) {
    ASSERT_NE(retry, nullptr) << body;
    EXPECT_GT(retry->number(), 0.0) << body;
  } else {
    EXPECT_EQ(retry, nullptr) << body;
  }
}

class ErrorEnvelopeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph(157));
    CpdConfig config;
    config.num_communities = 3;
    config.num_topics = 4;
    config.em_iterations = 3;
    config.seed = 41;
    auto model = CpdModel::Train(data_->graph, config);
    CPD_CHECK(model.ok());
    artifact_ = new std::string(::testing::TempDir() + "/envelope.cpdb");
    CPD_CHECK(model
                  ->SaveBinary(*artifact_,
                               &data_->graph.corpus().vocabulary())
                  .ok());
    delete data_;
    data_ = nullptr;
  }
  static void TearDownTestSuite() {
    delete artifact_;
    artifact_ = nullptr;
  }

  static SynthResult* data_;
  static std::string* artifact_;
};

SynthResult* ErrorEnvelopeTest::data_ = nullptr;
std::string* ErrorEnvelopeTest::artifact_ = nullptr;

TEST_F(ErrorEnvelopeTest, EveryTypedHandlerErrorUsesTheEnvelope) {
  // One server (no graph, no pipeline) covers the whole typed-error table.
  server::ModelRegistry registry(serve::ProfileIndexOptions{}, nullptr);
  ASSERT_TRUE(registry.LoadFrom(*artifact_).ok());
  HttpServerOptions options;
  options.port = 0;
  options.threads = 8;
  options.log_requests = false;
  HttpServer server(options);
  server::ServiceStats stats;
  server::RegisterCpdRoutes(&server, &registry, &stats);
  ASSERT_TRUE(server.Start().ok());

  struct Case {
    const char* name;
    const char* method;
    const char* target;
    const char* body;
    int status;
    const char* code;
  };
  const std::vector<Case> cases = {
      {"malformed json", "POST", "/v1/query", "this is not json", 400,
       "InvalidArgument"},
      {"unknown type", "POST", "/v1/query", R"({"type":"bogus"})", 400,
       "InvalidArgument"},
      {"missing selector", "POST", "/v1/query", R"({"user":3})", 400,
       "InvalidArgument"},
      {"unknown user", "POST", "/v1/query",
       R"({"type":"membership","user":999999})", 404, "OutOfRange"},
      {"integer overflow", "POST", "/v1/query",
       R"({"type":"membership","user":4294967299})", 400, "InvalidArgument"},
      {"unknown route", "GET", "/no/such/endpoint", "", 404, "NotFound"},
      {"bad path param", "GET", "/v1/membership/notanumber", "", 400,
       "InvalidArgument"},
      {"bad query param", "GET", "/v1/membership/3?k=abc", "", 400,
       "InvalidArgument"},
      {"diffusion without graph", "POST", "/v1/query",
       R"({"type":"diffusion","source":0,"target":1,"document":0})", 409,
       "FailedPrecondition"},
      {"unknown model", "POST", "/v1/models/ghost/query",
       R"({"type":"membership","user":0})", 503, "Unavailable"},
      {"unknown model via GET", "GET", "/v1/models/ghost/membership/0", "",
       503, "Unavailable"},
      {"ingest disabled", "POST", "/admin/ingest", "{}", 409,
       "FailedPrecondition"},
      {"empty model name", "POST", "/admin/reload", R"({"model":""})", 400,
       "InvalidArgument"},
      {"reload of unloaded name", "POST", "/admin/reload",
       R"({"model":"ghost"})", 409, "FailedPrecondition"},
      {"failed reload", "POST", "/admin/reload",
       R"({"path":"/no/such/file.cpdb"})", 500, "IOError"},
  };
  auto client = HttpClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());
  for (const Case& test_case : cases) {
    auto response =
        client->RoundTrip(test_case.method, test_case.target, test_case.body);
    ASSERT_TRUE(response.ok()) << test_case.name;
    EXPECT_EQ(response->status, test_case.status) << test_case.name;
    ExpectEnvelope(response->body, test_case.code);
  }
  server.Stop();
}

TEST_F(ErrorEnvelopeTest, EmptyRegistryAnswers503Envelopes) {
  server::ModelRegistry registry(serve::ProfileIndexOptions{}, nullptr);
  HttpServerOptions options;
  options.port = 0;
  options.threads = 4;
  options.log_requests = false;
  HttpServer server(options);
  server::ServiceStats stats;
  server::RegisterCpdRoutes(&server, &registry, &stats);
  ASSERT_TRUE(server.Start().ok());
  auto client = HttpClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());
  for (const char* target : {"/healthz", "/v1/membership/0"}) {
    auto response = client->RoundTrip("GET", target);
    ASSERT_TRUE(response.ok()) << target;
    EXPECT_EQ(response->status, 503) << target;
    ExpectEnvelope(response->body, "Unavailable");
  }
  auto query =
      client->RoundTrip("POST", "/v1/query", R"({"type":"membership","user":0})");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->status, 503);
  ExpectEnvelope(query->body, "Unavailable");
  server.Stop();
}

TEST_F(ErrorEnvelopeTest, AdmissionAndDeadlineErrorsUseTheEnvelope) {
  // 429 carries retry_after_ms in the body (and Retry-After on the wire).
  {
    HttpServerOptions options;
    options.port = 0;
    options.threads = 4;
    options.max_inflight = 1;
    options.log_requests = false;
    HttpServer server(options);
    std::mutex mutex;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;
    server.Handle("GET", "/block", [&](const HttpRequest&) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        entered = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release; });
      return HttpResponse{};
    });
    ASSERT_TRUE(server.Start().ok());
    std::thread blocker([&] {
      auto client = HttpClient::Connect(kHost, server.port());
      ASSERT_TRUE(client.ok());
      ASSERT_TRUE(client->RoundTrip("GET", "/block").ok());
    });
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return entered; });
    }
    auto prober = HttpClient::Connect(kHost, server.port());
    ASSERT_TRUE(prober.ok());
    auto rejected = prober->RoundTrip("GET", "/block");
    ASSERT_TRUE(rejected.ok());
    EXPECT_EQ(rejected->status, 429);
    ExpectEnvelope(rejected->body, "ResourceExhausted",
                   /*expect_retry_after=*/true);
    {
      std::lock_guard<std::mutex> lock(mutex);
      release = true;
    }
    cv.notify_all();
    blocker.join();
    server.Stop();
  }

  // 504: the deadline turns an over-budget handler into DeadlineExceeded.
  {
    HttpServerOptions options;
    options.port = 0;
    options.threads = 2;
    options.deadline_ms = 30;
    options.log_requests = false;
    HttpServer server(options);
    server.Handle("GET", "/slow", [](const HttpRequest&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      return HttpResponse{};
    });
    ASSERT_TRUE(server.Start().ok());
    auto client = HttpClient::Connect(kHost, server.port());
    ASSERT_TRUE(client.ok());
    auto slow = client->RoundTrip("GET", "/slow");
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(slow->status, 504);
    ExpectEnvelope(slow->body, "DeadlineExceeded");
    server.Stop();
  }
}

TEST_F(ErrorEnvelopeTest, FramingErrorsUseTheEnvelope) {
  HttpServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.max_head_bytes = 1024;
  options.max_body_bytes = 2048;
  options.log_requests = false;
  HttpServer server(options);
  server.Handle("GET", "/ok", [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());

  struct Case {
    const char* name;
    std::string probe;
    const char* status_line;
    const char* code;
  };
  const std::vector<Case> cases = {
      {"malformed request line", "THIS IS NOT HTTP\r\n\r\n",
       "400 Bad Request", "InvalidArgument"},
      {"bad content-length",
       "GET /ok HTTP/1.1\r\nHost: x\r\nContent-Length: nope\r\n\r\n",
       "400 Bad Request", "InvalidArgument"},
      {"declared body over cap",
       "POST /ok HTTP/1.1\r\nHost: x\r\nContent-Length: 999999\r\n\r\n",
       "413 Payload Too Large", "OutOfRange"},
      {"head over cap",
       "GET /ok HTTP/1.1\r\nX-Filler: " + std::string(1500, 'a') + "\r\n\r\n",
       "431 Request Header Fields Too Large", "OutOfRange"},
  };
  for (const Case& test_case : cases) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ASSERT_EQ(::inet_pton(AF_INET, kHost, &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    size_t sent = 0;
    while (sent < test_case.probe.size()) {
      const ssize_t n = ::send(fd, test_case.probe.data() + sent,
                               test_case.probe.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      response.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(response.find(test_case.status_line), std::string::npos)
        << test_case.name << ": " << response;
    const size_t body_start = response.find("\r\n\r\n");
    ASSERT_NE(body_start, std::string::npos) << test_case.name;
    ExpectEnvelope(response.substr(body_start + 4), test_case.code);
  }
  server.Stop();
}

}  // namespace
}  // namespace cpd
