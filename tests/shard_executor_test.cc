#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/em_trainer.h"
#include "core/state_snapshot.h"
#include "parallel/segmenter.h"
#include "parallel/shard_executor.h"
#include "test_util.h"

namespace cpd {
namespace {

CpdConfig BaseConfig() {
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 6;
  config.gibbs_sweeps_per_em = 2;
  config.nu_iterations = 30;
  config.seed = 9;
  return config;
}

// Builds a delta that moves every document in [begin, end) to a random new
// (community, topic) pair, diffed against `base`'s current assignments —
// the same construction a shard performs after its sweep.
CounterDelta MakeDelta(const SocialGraph& graph, const ModelState& base,
                       size_t begin, size_t end, uint64_t seed) {
  CounterDelta delta;
  Rng rng(seed);
  for (size_t d = begin; d < end && d < graph.num_documents(); ++d) {
    const DocId doc = static_cast<DocId>(d);
    const int32_t c_new = static_cast<int32_t>(
        rng.NextUint64(static_cast<uint64_t>(base.num_communities)));
    const int32_t z_new = static_cast<int32_t>(
        rng.NextUint64(static_cast<uint64_t>(base.num_topics)));
    delta.RecordMove(graph.document(doc), doc, base.doc_community[d],
                     base.doc_topic[d], c_new, z_new, base.num_communities,
                     base.num_topics, base.vocab_size);
  }
  return delta;
}

void ExpectSameCounters(const ModelState& a, const ModelState& b) {
  EXPECT_EQ(a.doc_topic, b.doc_topic);
  EXPECT_EQ(a.doc_community, b.doc_community);
  EXPECT_EQ(a.n_uc, b.n_uc);
  EXPECT_EQ(a.n_u, b.n_u);
  EXPECT_EQ(a.n_cz, b.n_cz);
  EXPECT_EQ(a.n_c, b.n_c);
  EXPECT_EQ(a.n_zw, b.n_zw);
  EXPECT_EQ(a.n_z, b.n_z);
}

TEST(CounterDeltaTest, MergeIsAssociativeAndCommutative) {
  const SynthResult data = testing::MakeTinyGraph(17);
  const CpdConfig config = BaseConfig();
  ModelState base(data.graph, config);
  Rng rng(3);
  base.InitializeRandom(data.graph, &rng);
  base.RebuildCounts(data.graph);

  // Three deltas over disjoint document ranges (as shards produce them).
  const size_t third = data.graph.num_documents() / 3;
  const CounterDelta a =
      MakeDelta(data.graph, base, 0, third, 21);
  const CounterDelta b =
      MakeDelta(data.graph, base, third, 2 * third, 22);
  const CounterDelta c =
      MakeDelta(data.graph, base, 2 * third, data.graph.num_documents(), 23);

  // (a + b) + c
  CounterDelta left;
  left.Merge(a);
  left.Merge(b);
  CounterDelta left_total;
  left_total.Merge(left);
  left_total.Merge(c);
  // a + (b + c)
  CounterDelta right_inner;
  right_inner.Merge(b);
  right_inner.Merge(c);
  CounterDelta right_total;
  right_total.Merge(a);
  right_total.Merge(right_inner);
  // c + a + b (a rotated order, exercising commutativity).
  CounterDelta rotated;
  rotated.Merge(c);
  rotated.Merge(a);
  rotated.Merge(b);

  ModelState s1 = base, s2 = base, s3 = base;
  left_total.ApplyTo(&s1);
  right_total.ApplyTo(&s2);
  rotated.ApplyTo(&s3);
  ExpectSameCounters(s1, s2);
  ExpectSameCounters(s1, s3);
  EXPECT_EQ(left_total.NumDocMoves(), a.NumDocMoves() + b.NumDocMoves() +
                                          c.NumDocMoves());
}

TEST(CounterDeltaTest, ApplyMatchesRebuildFromAssignments) {
  const SynthResult data = testing::MakeTinyGraph(18);
  const CpdConfig config = BaseConfig();
  ModelState base(data.graph, config);
  Rng rng(4);
  base.InitializeRandom(data.graph, &rng);
  base.RebuildCounts(data.graph);

  CounterDelta delta =
      MakeDelta(data.graph, base, 0, data.graph.num_documents(), 31);
  ModelState applied = base;
  delta.ApplyTo(&applied);

  // Incrementally applied counters must equal a from-scratch rebuild of the
  // post-move assignments.
  ModelState rebuilt = applied;
  rebuilt.RebuildCounts(data.graph);
  ExpectSameCounters(applied, rebuilt);
}

TEST(CounterDeltaTest, NoopMovesProduceEmptyDelta) {
  const SynthResult data = testing::MakeTinyGraph(19);
  const CpdConfig config = BaseConfig();
  ModelState base(data.graph, config);
  Rng rng(5);
  base.InitializeRandom(data.graph, &rng);
  base.RebuildCounts(data.graph);

  CounterDelta delta;
  for (size_t d = 0; d < data.graph.num_documents(); ++d) {
    const DocId doc = static_cast<DocId>(d);
    delta.RecordMove(data.graph.document(doc), doc, base.doc_community[d],
                     base.doc_topic[d], base.doc_community[d],
                     base.doc_topic[d], base.num_communities, base.num_topics,
                     base.vocab_size);
  }
  EXPECT_TRUE(delta.Empty());
  EXPECT_EQ(delta.NonzeroEntries(), 0u);
}

TEST(StateSnapshotTest, CaptureRestoreRoundTrips) {
  const SynthResult data = testing::MakeTinyGraph(20);
  const CpdConfig config = BaseConfig();
  ModelState master(data.graph, config);
  Rng rng(6);
  master.InitializeRandom(data.graph, &rng);
  master.RebuildCounts(data.graph);

  StateSnapshot snapshot;
  EXPECT_FALSE(snapshot.captured());
  snapshot.CaptureFrom(master);
  EXPECT_TRUE(snapshot.captured());

  ModelState working(data.graph, config);
  snapshot.RestoreTo(&working);
  ExpectSameCounters(master, working);
  EXPECT_EQ(master.lambda, working.lambda);
  EXPECT_EQ(master.delta, working.delta);
  EXPECT_EQ(master.eta, working.eta);
  EXPECT_EQ(master.weights, working.weights);
  for (size_t d = 0; d < data.graph.num_documents(); ++d) {
    EXPECT_EQ(snapshot.TopicOf(static_cast<DocId>(d)), master.doc_topic[d]);
    EXPECT_EQ(snapshot.CommunityOf(static_cast<DocId>(d)),
              master.doc_community[d]);
  }
}

// The acceptance bar of the refactor: with the same seed and shard count,
// serial and pooled dispatch produce bit-identical post-merge counters —
// RNG streams attach to shards, snapshots freeze reads, and delta merging
// is exact integer addition.
void ExpectSerialPooledIdentical(int num_shards, SamplerMode mode) {
  const SynthResult data = testing::MakeTinyGraph(42);

  CpdConfig serial_config = BaseConfig();
  serial_config.sampler_mode = mode;
  serial_config.num_shards = num_shards;
  serial_config.executor_mode = ExecutorMode::kSerial;
  EmTrainer serial(data.graph, serial_config);
  ASSERT_TRUE(serial.Train().ok());

  CpdConfig pooled_config = serial_config;
  pooled_config.executor_mode = ExecutorMode::kPooled;
  pooled_config.num_threads = 4;
  EmTrainer pooled(data.graph, pooled_config);
  ASSERT_TRUE(pooled.Train().ok());

  ExpectSameCounters(serial.state(), pooled.state());
  EXPECT_EQ(serial.state().lambda, pooled.state().lambda);
  EXPECT_EQ(serial.state().delta, pooled.state().delta);
  EXPECT_EQ(serial.state().eta, pooled.state().eta);
  EXPECT_EQ(serial.state().weights, pooled.state().weights);
  ASSERT_EQ(serial.stats().link_log_likelihood.size(),
            pooled.stats().link_log_likelihood.size());
  for (size_t i = 0; i < serial.stats().link_log_likelihood.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.stats().link_log_likelihood[i],
                     pooled.stats().link_log_likelihood[i]);
  }
}

TEST(ShardExecutorTest, SerialAndPooledBitIdenticalOneShard) {
  ExpectSerialPooledIdentical(1, SamplerMode::kSparse);
}

TEST(ShardExecutorTest, SerialAndPooledBitIdenticalFourShards) {
  ExpectSerialPooledIdentical(4, SamplerMode::kSparse);
}

TEST(ShardExecutorTest, SerialAndPooledBitIdenticalDense) {
  ExpectSerialPooledIdentical(4, SamplerMode::kDense);
}

// Counter invariants survive the snapshot/merge loop: after training, the
// incrementally merged master counters equal a from-scratch rebuild.
TEST(ShardExecutorTest, MergedCountersStayConsistent) {
  const SynthResult data = testing::MakeTinyGraph(43);
  CpdConfig config = BaseConfig();
  config.num_threads = 4;
  EmTrainer trainer(data.graph, config);
  ASSERT_TRUE(trainer.Train().ok());

  ModelState rebuilt = trainer.state();
  rebuilt.RebuildCounts(data.graph);
  ExpectSameCounters(trainer.state(), rebuilt);
  EXPECT_GT(trainer.stats().delta_doc_moves, 0u);
  EXPECT_GE(trainer.stats().merge_seconds, 0.0);
}

// N shards under serial dispatch isolate the shard *semantics* (stale
// snapshot reads within a sweep) from threading: quality must stay in the
// same regime as the single-shard sequential reference.
TEST(ShardExecutorTest, MultiShardMatchesSequentialQuality) {
  const SynthResult data = testing::MakeTinyGraph(44);

  CpdConfig reference_config = BaseConfig();
  reference_config.num_shards = 1;
  EmTrainer reference(data.graph, reference_config);
  ASSERT_TRUE(reference.Train().ok());

  CpdConfig sharded_config = BaseConfig();
  sharded_config.num_shards = 4;
  sharded_config.executor_mode = ExecutorMode::kSerial;
  EmTrainer sharded(data.graph, sharded_config);
  ASSERT_TRUE(sharded.Train().ok());

  const double ref_ll = reference.stats().link_log_likelihood.back();
  const double sharded_ll = sharded.stats().link_log_likelihood.back();
  EXPECT_LT(std::fabs(sharded_ll - ref_ll) / std::fabs(ref_ll), 0.2);
}

TEST(ShardExecutorTest, CollapseCacheCountsHitsAndPreservesQuality) {
  const SynthResult data = testing::MakeTinyGraph(45);

  CpdConfig cached_config = BaseConfig();
  cached_config.cache_eta_collapse = true;
  EmTrainer cached(data.graph, cached_config);
  ASSERT_TRUE(cached.Train().ok());
  // Diffusion links share endpoints, so a training run must register hits.
  EXPECT_GT(cached.stats().eta_collapse_hits, 0);
  EXPECT_GT(cached.stats().eta_collapse_misses, 0);

  CpdConfig uncached_config = BaseConfig();
  uncached_config.cache_eta_collapse = false;
  EmTrainer uncached(data.graph, uncached_config);
  ASSERT_TRUE(uncached.Train().ok());
  EXPECT_EQ(uncached.stats().eta_collapse_hits, 0);
  EXPECT_EQ(uncached.stats().eta_collapse_misses, 0);

  const double cached_ll = cached.stats().link_log_likelihood.back();
  const double uncached_ll = uncached.stats().link_log_likelihood.back();
  EXPECT_LT(std::fabs(cached_ll - uncached_ll) / std::fabs(uncached_ll), 0.2);
}

// MH acceptance counters accumulate inside the private shard samplers; the
// trainer must fold them into the master sampler so sparse-backend health
// stays observable through the usual mh_stats() handle.
TEST(ShardExecutorTest, MasterSamplerReportsShardMhStats) {
  const SynthResult data = testing::MakeTinyGraph(48);
  CpdConfig config = BaseConfig();
  config.sampler_mode = SamplerMode::kSparse;
  config.num_threads = 2;
  EmTrainer trainer(data.graph, config);
  ASSERT_TRUE(trainer.Train().ok());
  const MhStats stats = trainer.sampler()->mh_stats();
  EXPECT_GT(stats.topic_proposals, 0);
  EXPECT_GT(stats.community_proposals, 0);
  EXPECT_GT(stats.TopicAcceptRate(), 0.0);
}

TEST(ShardExecutorTest, TrivialPlanCoversAllUsersInOrder) {
  const SynthResult data = testing::MakeTinyGraph(46);
  const ThreadPlan plan = TrivialThreadPlan(data.graph, WorkloadCostModel());
  ASSERT_EQ(plan.users_per_thread.size(), 1u);
  ASSERT_EQ(plan.users_per_thread[0].size(), data.graph.num_users());
  for (size_t u = 0; u < data.graph.num_users(); ++u) {
    EXPECT_EQ(plan.users_per_thread[0][u], static_cast<UserId>(u));
  }
  EXPECT_GT(plan.allocation.thread_workload[0], 0.0);
}

TEST(ShardExecutorTest, ExecutorAccessorAndShardTimings) {
  const SynthResult data = testing::MakeTinyGraph(47);
  CpdConfig config = BaseConfig();
  config.num_threads = 2;
  EmTrainer trainer(data.graph, config);
  ASSERT_TRUE(trainer.Initialize().ok());
  EXPECT_EQ(trainer.executor(), nullptr);  // Built lazily by the first EStep.
  ASSERT_TRUE(trainer.EStep().ok());
  ASSERT_NE(trainer.executor(), nullptr);
  EXPECT_EQ(trainer.executor()->num_shards(), 2);
  EXPECT_EQ(trainer.stats().thread_actual_seconds.size(), 2u);
}

}  // namespace
}  // namespace cpd
