#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "graph/social_graph.h"
#include "test_util.h"

namespace cpd {
namespace {

TEST(GraphBuilderTest, HandGraphShape) {
  const SocialGraph graph = testing::MakeHandGraph();
  EXPECT_EQ(graph.num_users(), 4u);
  EXPECT_EQ(graph.num_documents(), 4u);
  EXPECT_EQ(graph.num_friendship_links(), 5u);
  EXPECT_EQ(graph.num_diffusion_links(), 2u);
  EXPECT_EQ(graph.num_time_bins(), 2);
}

TEST(GraphBuilderTest, FriendNeighborsAreUndirectedDeduped) {
  const SocialGraph graph = testing::MakeHandGraph();
  // User 1: links (0,1),(1,0),(1,2) -> neighbors {0, 2}.
  const auto neighbors = graph.FriendNeighbors(1);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 0);
  EXPECT_EQ(neighbors[1], 2);
}

TEST(GraphBuilderTest, HasFriendshipIsDirected) {
  const SocialGraph graph = testing::MakeHandGraph();
  EXPECT_TRUE(graph.HasFriendship(1, 2));
  EXPECT_FALSE(graph.HasFriendship(2, 1));
}

TEST(GraphBuilderTest, DiffusionIncidenceCoversBothEndpoints) {
  const SocialGraph graph = testing::MakeHandGraph();
  // Link 0: docs 0 -> 1; both docs see link index 0.
  ASSERT_EQ(graph.DiffusionNeighbors(0).size(), 1u);
  ASSERT_EQ(graph.DiffusionNeighbors(1).size(), 1u);
  EXPECT_EQ(graph.DiffusionNeighbors(0)[0], 0);
  EXPECT_EQ(graph.DiffusionNeighbors(1)[0], 0);
  EXPECT_TRUE(graph.HasDiffusion(0, 1));
  EXPECT_FALSE(graph.HasDiffusion(1, 0));
}

TEST(GraphBuilderTest, DuplicateAndSelfLinksIgnored) {
  GraphBuilder builder;
  builder.SetNumUsers(2);
  Vocabulary vocab;
  const WordId w = vocab.GetOrAdd("w");
  builder.SetVocabulary(vocab);
  const std::vector<WordId> words = {w, w};
  builder.AddTokenizedDocument(0, 0, words);
  builder.AddTokenizedDocument(1, 0, words);
  builder.AddFriendship(0, 1);
  builder.AddFriendship(0, 1);  // Duplicate.
  builder.AddFriendship(0, 0);  // Self-loop.
  builder.AddDiffusion(0, 1, 0);
  builder.AddDiffusion(0, 1, 0);  // Duplicate.
  builder.AddDiffusion(0, 0, 0);  // Self-loop.
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_friendship_links(), 1u);
  EXPECT_EQ(graph->num_diffusion_links(), 1u);
}

TEST(GraphBuilderTest, DropIsolatedUsersRemaps) {
  GraphBuilder builder;
  builder.SetNumUsers(4);
  Vocabulary vocab;
  const WordId w = vocab.GetOrAdd("w");
  builder.SetVocabulary(vocab);
  const std::vector<WordId> words = {w, w, w};
  builder.AddTokenizedDocument(1, 0, words);
  builder.AddTokenizedDocument(3, 0, words);
  builder.AddFriendship(1, 3);
  builder.AddFriendship(0, 1);  // User 0 has no docs; link must vanish.
  auto graph = builder.Build(/*drop_isolated_users=*/true);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_users(), 2u);
  EXPECT_EQ(graph->num_friendship_links(), 1u);
  EXPECT_EQ(graph->document(0).user, 0);
  EXPECT_EQ(graph->document(1).user, 1);
  EXPECT_TRUE(graph->HasFriendship(0, 1));
}

TEST(GraphBuilderTest, ActivityCounts) {
  const SocialGraph graph = testing::MakeHandGraph();
  // User 0: out-degree 1 (0->1), in-degree 1 (1->0), 1 doc, doc 0 diffuses.
  const UserActivity& activity = graph.activity(0);
  EXPECT_EQ(activity.followees, 1);
  EXPECT_EQ(activity.followers, 1);
  EXPECT_EQ(activity.documents, 1);
  EXPECT_EQ(activity.diffusions, 1);
  EXPECT_GT(activity.Popularity(), 0.0);
  EXPECT_GT(activity.Activeness(), 0.0);
}

TEST(GraphBuilderTest, BuildWithoutUsersFails) {
  GraphBuilder builder;
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GraphStatsTest, HandGraphStats) {
  const SocialGraph graph = testing::MakeHandGraph();
  const GraphStats stats = ComputeGraphStats(graph);
  EXPECT_EQ(stats.num_users, 4u);
  EXPECT_EQ(stats.num_documents, 4u);
  EXPECT_EQ(stats.num_friendship_links, 5u);
  EXPECT_EQ(stats.num_diffusion_links, 2u);
  EXPECT_EQ(stats.num_words, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_documents_per_user, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_words_per_document, 3.0);
  EXPECT_FALSE(GraphStatsToString(stats).empty());
}

}  // namespace
}  // namespace cpd
