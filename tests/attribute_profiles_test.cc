#include <gtest/gtest.h>

#include <cmath>

#include "apps/attribute_profiles.h"
#include "core/cpd_model.h"
#include "test_util.h"

namespace cpd {
namespace {

class AttributeProfilesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SynthResult(testing::MakeTinyGraph(881));
    CpdConfig config;
    config.num_communities = 4;
    config.num_topics = 6;
    config.em_iterations = 8;
    config.seed = 883;
    auto model = CpdModel::Train(data_->graph, config);
    ASSERT_TRUE(model.ok());
    model_ = new CpdModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
  }

  // An attribute perfectly aligned with the planted communities.
  static UserAttribute PlantedAttribute() {
    UserAttribute attribute;
    attribute.name = "region";
    for (int c = 0; c < data_->truth.num_communities; ++c) {
      attribute.values.push_back("region" + std::to_string(c));
    }
    attribute.value_of_user.assign(data_->truth.user_community.begin(),
                                   data_->truth.user_community.end());
    return attribute;
  }

  static SynthResult* data_;
  static CpdModel* model_;
};

SynthResult* AttributeProfilesTest::data_ = nullptr;
CpdModel* AttributeProfilesTest::model_ = nullptr;

TEST_F(AttributeProfilesTest, InternalProfilesAreDistributions) {
  auto profiles = AttributeProfiles::Build(*model_, PlantedAttribute());
  ASSERT_TRUE(profiles.ok());
  for (int c = 0; c < profiles->num_communities(); ++c) {
    double total = 0.0;
    for (int a = 0; a < profiles->num_values(); ++a) {
      const double p = profiles->Internal(c, a);
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(AttributeProfilesTest, AlignedAttributeGivesLowEntropy) {
  auto profiles = AttributeProfiles::Build(*model_, PlantedAttribute());
  ASSERT_TRUE(profiles.ok());
  // A community-aligned attribute must be far from uniform: mean entropy
  // well below log(num_values).
  double mean_entropy = 0.0;
  for (int c = 0; c < profiles->num_communities(); ++c) {
    mean_entropy += profiles->Entropy(c);
  }
  mean_entropy /= profiles->num_communities();
  EXPECT_LT(mean_entropy, std::log(4.0) * 0.9);
}

TEST_F(AttributeProfilesTest, RandomAttributeGivesHighEntropy) {
  UserAttribute attribute;
  attribute.name = "coinflip";
  attribute.values = {"heads", "tails"};
  Rng rng(7);
  for (size_t u = 0; u < data_->graph.num_users(); ++u) {
    attribute.value_of_user.push_back(rng.NextBernoulli(0.5) ? 1 : 0);
  }
  auto profiles = AttributeProfiles::Build(*model_, attribute);
  ASSERT_TRUE(profiles.ok());
  for (int c = 0; c < profiles->num_communities(); ++c) {
    EXPECT_GT(profiles->Entropy(c), std::log(2.0) * 0.7);
  }
}

TEST_F(AttributeProfilesTest, DominantValueMatchesArgmax) {
  auto profiles = AttributeProfiles::Build(*model_, PlantedAttribute());
  ASSERT_TRUE(profiles.ok());
  for (int c = 0; c < profiles->num_communities(); ++c) {
    const int dominant = profiles->DominantValue(c);
    for (int a = 0; a < profiles->num_values(); ++a) {
      EXPECT_LE(profiles->Internal(c, a), profiles->Internal(c, dominant));
    }
  }
}

TEST_F(AttributeProfilesTest, ExternalProfileFactorizes) {
  auto profiles = AttributeProfiles::Build(*model_, PlantedAttribute());
  ASSERT_TRUE(profiles.ok());
  // Definitionally eta_norm * p(a|c) * p(a'|c'); check consistency.
  const double external = profiles->External(0, 1, 2, 3);
  EXPECT_GE(external, 0.0);
  EXPECT_LE(external, 1.0);
  // Summing over attribute pairs recovers the normalized eta weight.
  double total = 0.0;
  for (int a = 0; a < profiles->num_values(); ++a) {
    for (int a2 = 0; a2 < profiles->num_values(); ++a2) {
      total += profiles->External(0, 1, a, a2);
    }
  }
  double eta_row_total = 0.0;
  for (int c2 = 0; c2 < profiles->num_communities(); ++c2) {
    double pair_total = 0.0;
    for (int a = 0; a < profiles->num_values(); ++a) {
      for (int a2 = 0; a2 < profiles->num_values(); ++a2) {
        pair_total += profiles->External(0, c2, a, a2);
      }
    }
    eta_row_total += pair_total;
  }
  EXPECT_NEAR(eta_row_total, 1.0, 1e-6);  // Row-normalized eta.
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST_F(AttributeProfilesTest, RejectsMalformedInput) {
  UserAttribute empty;
  empty.name = "empty";
  EXPECT_FALSE(AttributeProfiles::Build(*model_, empty).ok());

  UserAttribute wrong_size;
  wrong_size.name = "short";
  wrong_size.values = {"x"};
  wrong_size.value_of_user = {0};
  EXPECT_FALSE(AttributeProfiles::Build(*model_, wrong_size).ok());

  UserAttribute bad_id = PlantedAttribute();
  bad_id.value_of_user[0] = 99;
  EXPECT_FALSE(AttributeProfiles::Build(*model_, bad_id).ok());
}

}  // namespace
}  // namespace cpd
