#include <gtest/gtest.h>

#include <vector>

#include "sampling/alias_table.h"
#include "util/rng.h"

namespace cpd {
namespace {

TEST(AliasTableTest, NormalizedProbabilities) {
  const std::vector<double> weights = {2.0, 6.0, 2.0};
  AliasTable table(weights);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_NEAR(table.Probability(0), 0.2, 1e-12);
  EXPECT_NEAR(table.Probability(1), 0.6, 1e-12);
}

TEST(AliasTableTest, SamplingMatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng rng(55);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, weights[k] / 10.0, 0.01)
        << "bucket " << k;
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  AliasTable table(weights);
  Rng rng(56);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(table.Sample(&rng), 1u);
}

TEST(AliasTableTest, SingleBucket) {
  const std::vector<double> weights = {3.5};
  AliasTable table(weights);
  Rng rng(57);
  EXPECT_EQ(table.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(table.Probability(0), 1.0);
}

TEST(AliasTableTest, HighlySkewedDistribution) {
  std::vector<double> weights(1000, 1e-6);
  weights[500] = 1.0;
  AliasTable table(weights);
  Rng rng(58);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += table.Sample(&rng) == 500 ? 1 : 0;
  // P(500) ~ 1 / (1 + 999e-6) ~ 0.999.
  EXPECT_GT(static_cast<double>(hits) / n, 0.99);
}

TEST(AliasTableTest, RebuildReplacesDistribution) {
  AliasTable table;
  EXPECT_TRUE(table.empty());
  const std::vector<double> first = {1.0, 1.0};
  table.Rebuild(first);
  EXPECT_EQ(table.size(), 2u);
  // Rebuild with a different size and skew; the table must fully forget the
  // old distribution.
  const std::vector<double> second = {1.0, 2.0, 3.0, 4.0};
  table.Rebuild(second);
  EXPECT_EQ(table.size(), 4u);
  Rng rng(60);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, second[k] / 10.0, 0.01)
        << "bucket " << k;
  }
}

TEST(AliasTableTest, StaleProposalKeepsBuildTimeProbabilities) {
  // The sparse sampler's MH correction relies on Probability() reporting the
  // distribution frozen at (re)build time, even while the source weights
  // move on. Simulate that: build from a snapshot, mutate the snapshot,
  // verify both Probability() and Sample() still follow the frozen build.
  std::vector<double> weights = {3.0, 1.0};
  AliasTable table(weights);
  weights[0] = 1.0;
  weights[1] = 99.0;  // "Counts" changed after the build.
  EXPECT_NEAR(table.Probability(0), 0.75, 1e-12);
  EXPECT_NEAR(table.Probability(1), 0.25, 1e-12);
  Rng rng(61);
  int zero_hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) zero_hits += table.Sample(&rng) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zero_hits) / n, 0.75, 0.01);
  // A rebuild then adopts the new weights.
  table.Rebuild(weights);
  EXPECT_NEAR(table.Probability(1), 0.99, 1e-12);
}

TEST(AliasTableTest, RepeatedRebuildIsStable) {
  // Bulk-rebuild path of the sparse sampler: many rebuilds on one instance
  // must not accumulate state in the scratch buffers.
  AliasTable table;
  Rng rng(62);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> weights(16);
    for (double& w : weights) w = rng.NextDoubleOpen();
    table.Rebuild(weights);
    double total = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) total += weights[i];
    for (size_t i = 0; i < weights.size(); ++i) {
      EXPECT_NEAR(table.Probability(i), weights[i] / total, 1e-12);
    }
    EXPECT_LT(table.Sample(&rng), weights.size());
  }
}

TEST(AliasTableDeathTest, RejectsAllZeroWeights) {
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_DEATH({ AliasTable table(weights); }, "Check failed");
}

}  // namespace
}  // namespace cpd
