#include <gtest/gtest.h>

#include <filesystem>

#include "graph/graph_io.h"
#include "test_util.h"
#include "util/file_util.h"

namespace cpd {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/cpd_graph_io";
    std::filesystem::create_directories(dir_);
    docs_ = dir_ + "/docs.tsv";
    friends_ = dir_ + "/friends.tsv";
    diffusion_ = dir_ + "/diffusion.tsv";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_, docs_, friends_, diffusion_;
};

TEST_F(GraphIoTest, SaveLoadRoundTrip) {
  const SocialGraph graph = testing::MakeHandGraph();
  ASSERT_TRUE(SaveSocialGraph(graph, docs_, friends_, diffusion_).ok());

  GraphIoOptions options;
  options.tokenizer.stem = false;
  options.tokenizer.remove_stopwords = false;
  options.tokenizer.remove_function_words = false;
  auto loaded = LoadSocialGraph(graph.num_users(), docs_, friends_, diffusion_,
                                options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users(), graph.num_users());
  EXPECT_EQ(loaded->num_documents(), graph.num_documents());
  EXPECT_EQ(loaded->num_friendship_links(), graph.num_friendship_links());
  EXPECT_EQ(loaded->num_diffusion_links(), graph.num_diffusion_links());
  EXPECT_TRUE(loaded->HasDiffusion(0, 1));
}

TEST_F(GraphIoTest, AppliesPreprocessing) {
  // Doc 1 reduces to one token after stopword removal -> dropped, and the
  // diffusion row touching it must be skipped; user 1 becomes isolated and
  // is removed.
  ASSERT_TRUE(WriteStringToFile(
                  docs_, "0\t0\twireless sensor networks\n1\t1\tthe about\n")
                  .ok());
  ASSERT_TRUE(WriteStringToFile(friends_, "0\t1\n").ok());
  ASSERT_TRUE(WriteStringToFile(diffusion_, "1\t0\t1\n").ok());
  auto loaded = LoadSocialGraph(2, docs_, friends_, diffusion_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users(), 1u);
  EXPECT_EQ(loaded->num_documents(), 1u);
  EXPECT_EQ(loaded->num_diffusion_links(), 0u);
  EXPECT_EQ(loaded->num_friendship_links(), 0u);
}

TEST_F(GraphIoTest, MalformedRowsRejected) {
  ASSERT_TRUE(WriteStringToFile(docs_, "0\tnotanumber\ttext here\n").ok());
  ASSERT_TRUE(WriteStringToFile(friends_, "").ok());
  ASSERT_TRUE(WriteStringToFile(diffusion_, "").ok());
  auto loaded = LoadSocialGraph(1, docs_, friends_, diffusion_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, OutOfRangeUserRejected) {
  ASSERT_TRUE(WriteStringToFile(docs_, "5\t0\talpha beta gamma\n").ok());
  ASSERT_TRUE(WriteStringToFile(friends_, "").ok());
  ASSERT_TRUE(WriteStringToFile(diffusion_, "").ok());
  auto loaded = LoadSocialGraph(2, docs_, friends_, diffusion_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
}

TEST_F(GraphIoTest, MissingFileIsIOError) {
  auto loaded = LoadSocialGraph(1, dir_ + "/none.tsv", friends_, diffusion_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace cpd
