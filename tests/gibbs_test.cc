#include <gtest/gtest.h>

#include <cmath>

#include "core/cpd_model.h"
#include "core/gibbs_sampler.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace cpd {
namespace {

// The GibbsSamplerTest suite drives the exact dense reference kernels
// regardless of the library default (now kSparse); SparseConfig() below opts
// back into the sparse backend explicitly.
CpdConfig DenseConfig() {
  CpdConfig cfg;
  cfg.sampler_mode = SamplerMode::kDense;
  return cfg;
}

struct Harness {
  explicit Harness(uint64_t seed = 5, CpdConfig cfg = DenseConfig())
      : result(testing::MakeTinyGraph(seed)),
        config(PrepareConfig(std::move(cfg))),
        caches(result.graph),
        state(result.graph, config),
        sampler(result.graph, config, caches, &state),
        rng(seed + 1) {
    state.InitializeRandom(result.graph, &rng);
    state.RebuildCounts(result.graph);
    state.popularity.Refresh(result.graph, state.doc_topic);
  }

  static CpdConfig PrepareConfig(CpdConfig cfg) {
    cfg.num_communities = 4;
    cfg.num_topics = 6;
    return cfg;
  }

  SynthResult result;
  CpdConfig config;
  LinkCaches caches;
  ModelState state;
  GibbsSampler sampler;
  Rng rng;
};

// Counter invariants must survive full sweeps (the sampler's remove/add
// bookkeeping is exact).
TEST(GibbsSamplerTest, CountsRemainConsistentAfterSweeps) {
  Harness h;
  for (int sweep = 0; sweep < 3; ++sweep) {
    h.sampler.SweepDocuments(&h.rng);
  }
  ModelState fresh(h.result.graph, h.config);
  fresh.doc_topic = h.state.doc_topic;
  fresh.doc_community = h.state.doc_community;
  fresh.RebuildCounts(h.result.graph);
  EXPECT_EQ(fresh.n_uc, h.state.n_uc);
  EXPECT_EQ(fresh.n_cz, h.state.n_cz);
  EXPECT_EQ(fresh.n_zw, h.state.n_zw);
  EXPECT_EQ(fresh.n_z, h.state.n_z);
  EXPECT_EQ(fresh.n_c, h.state.n_c);
  EXPECT_EQ(fresh.n_u, h.state.n_u);
}

TEST(GibbsSamplerTest, AssignmentsStayInRange) {
  Harness h;
  h.sampler.SweepDocuments(&h.rng);
  for (size_t d = 0; d < h.state.num_documents; ++d) {
    EXPECT_GE(h.state.doc_topic[d], 0);
    EXPECT_LT(h.state.doc_topic[d], h.config.num_topics);
    EXPECT_GE(h.state.doc_community[d], 0);
    EXPECT_LT(h.state.doc_community[d], h.config.num_communities);
  }
}

TEST(GibbsSamplerTest, PolyaGammaSweepsProducePositiveFiniteValues) {
  Harness h;
  h.sampler.SweepFriendshipAugmentation(&h.rng);
  h.sampler.SweepDiffusionAugmentation(&h.rng);
  for (double lambda : h.state.lambda) {
    EXPECT_GT(lambda, 0.0);
    EXPECT_TRUE(std::isfinite(lambda));
  }
  for (double delta : h.state.delta) {
    EXPECT_GT(delta, 0.0);
    EXPECT_TRUE(std::isfinite(delta));
  }
}

TEST(GibbsSamplerTest, EnergiesAreFinite) {
  Harness h;
  h.sampler.SweepDocuments(&h.rng);
  for (size_t f = 0; f < h.result.graph.num_friendship_links(); ++f) {
    EXPECT_TRUE(std::isfinite(h.sampler.FriendshipEnergy(f)));
  }
  for (size_t e = 0; e < h.result.graph.num_diffusion_links(); ++e) {
    EXPECT_TRUE(std::isfinite(h.sampler.DiffusionEnergy(e)));
  }
  EXPECT_TRUE(std::isfinite(h.sampler.LinkLogLikelihood()));
}

TEST(GibbsSamplerTest, FreezeCommunitiesHoldsAssignments) {
  Harness h;
  h.sampler.set_freeze_communities(true);
  const std::vector<int32_t> before = h.state.doc_community;
  h.sampler.SweepDocuments(&h.rng);
  EXPECT_EQ(h.state.doc_community, before);
  // Topics still move.
}

TEST(GibbsSamplerTest, NoHeterogeneityEnergyIsMembershipDot) {
  CpdConfig cfg = DenseConfig();
  cfg.ablation.heterogeneous_links = false;
  Harness h(7, cfg);
  const DiffusionLink& link = h.result.graph.diffusion_links()[0];
  const UserId u = h.result.graph.document(link.i).user;
  const UserId v = h.result.graph.document(link.j).user;
  EXPECT_DOUBLE_EQ(h.sampler.DiffusionEnergy(0), h.state.MembershipDot(u, v));
}

TEST(GibbsSamplerTest, ModelFriendshipOffSkipsLambda) {
  CpdConfig cfg = DenseConfig();
  cfg.ablation.model_friendship = false;
  Harness h(8, cfg);
  const std::vector<double> before = h.state.lambda;
  h.sampler.SweepFriendshipAugmentation(&h.rng);
  EXPECT_EQ(h.state.lambda, before);
}

TEST(GibbsSamplerTest, SweepUsersTouchesOnlyGivenUsers) {
  Harness h;
  // Sweep only user 0's documents; other users' assignments must not change
  // ... their n_u entries must stay constant (assignments of other users may
  // be re-sampled only via their own docs).
  std::vector<int32_t> before_topics = h.state.doc_topic;
  const std::vector<UserId> users = {0};
  h.sampler.SweepUsers(users, /*concurrent=*/false, &h.rng);
  for (size_t d = 0; d < h.state.num_documents; ++d) {
    if (h.result.graph.document(static_cast<DocId>(d)).user != 0) {
      EXPECT_EQ(h.state.doc_topic[d], before_topics[d]) << "doc " << d;
    }
  }
}

TEST(GibbsSamplerTest, ConcurrentSweepKeepsCountsConsistent) {
  Harness h;
  std::vector<UserId> all_users(h.result.graph.num_users());
  for (size_t u = 0; u < all_users.size(); ++u) {
    all_users[u] = static_cast<UserId>(u);
  }
  h.sampler.SweepUsers(all_users, /*concurrent=*/true, &h.rng);
  ModelState fresh(h.result.graph, h.config);
  fresh.doc_topic = h.state.doc_topic;
  fresh.doc_community = h.state.doc_community;
  fresh.RebuildCounts(h.result.graph);
  EXPECT_EQ(fresh.n_cz, h.state.n_cz);
  EXPECT_EQ(fresh.n_zw, h.state.n_zw);
}

// ---------- sparse (alias + Metropolis-Hastings) backend ----------

CpdConfig SparseConfig() {
  CpdConfig cfg;
  cfg.sampler_mode = SamplerMode::kSparse;
  return cfg;
}

// The sparse kernels share the dense bookkeeping; counter invariants must
// survive sparse sweeps identically.
TEST(SparseGibbsTest, CountsRemainConsistentAfterSweeps) {
  Harness h(5, SparseConfig());
  for (int sweep = 0; sweep < 3; ++sweep) {
    h.sampler.SweepDocuments(&h.rng);
  }
  ModelState fresh(h.result.graph, h.config);
  fresh.doc_topic = h.state.doc_topic;
  fresh.doc_community = h.state.doc_community;
  fresh.RebuildCounts(h.result.graph);
  EXPECT_EQ(fresh.n_uc, h.state.n_uc);
  EXPECT_EQ(fresh.n_cz, h.state.n_cz);
  EXPECT_EQ(fresh.n_zw, h.state.n_zw);
  EXPECT_EQ(fresh.n_z, h.state.n_z);
  EXPECT_EQ(fresh.n_c, h.state.n_c);
  EXPECT_EQ(fresh.n_u, h.state.n_u);
}

TEST(SparseGibbsTest, AssignmentsStayInRange) {
  Harness h(6, SparseConfig());
  for (int sweep = 0; sweep < 2; ++sweep) h.sampler.SweepDocuments(&h.rng);
  for (size_t d = 0; d < h.state.num_documents; ++d) {
    EXPECT_GE(h.state.doc_topic[d], 0);
    EXPECT_LT(h.state.doc_topic[d], h.config.num_topics);
    EXPECT_GE(h.state.doc_community[d], 0);
    EXPECT_LT(h.state.doc_community[d], h.config.num_communities);
  }
}

TEST(SparseGibbsTest, FreezeCommunitiesHoldsAssignments) {
  Harness h(9, SparseConfig());
  h.sampler.set_freeze_communities(true);
  const std::vector<int32_t> before = h.state.doc_community;
  h.sampler.SweepDocuments(&h.rng);
  EXPECT_EQ(h.state.doc_community, before);
}

TEST(SparseGibbsTest, ConcurrentSweepKeepsCountsConsistent) {
  Harness h(10, SparseConfig());
  h.sampler.RebuildSparseTables();  // Concurrent callers rebuild up front.
  std::vector<UserId> all_users(h.result.graph.num_users());
  for (size_t u = 0; u < all_users.size(); ++u) {
    all_users[u] = static_cast<UserId>(u);
  }
  h.sampler.SweepUsers(all_users, /*concurrent=*/true, &h.rng);
  ModelState fresh(h.result.graph, h.config);
  fresh.doc_topic = h.state.doc_topic;
  fresh.doc_community = h.state.doc_community;
  fresh.RebuildCounts(h.result.graph);
  EXPECT_EQ(fresh.n_cz, h.state.n_cz);
  EXPECT_EQ(fresh.n_zw, h.state.n_zw);
}

// Acceptance-rate sanity: with per-sweep table rebuilds the stale proposals
// track the target closely, so acceptance must be well away from 0 (dead
// chain) and proposals must actually be counted. Self-proposals count as
// accepts, so rates are bounded by 1 from above trivially.
TEST(SparseGibbsTest, MhAcceptanceRatesAreSane) {
  Harness h(11, SparseConfig());
  for (int sweep = 0; sweep < 5; ++sweep) h.sampler.SweepDocuments(&h.rng);
  const MhStats stats = h.sampler.mh_stats();
  const int64_t docs = static_cast<int64_t>(h.state.num_documents);
  EXPECT_EQ(stats.topic_proposals, 5 * docs * h.config.mh_steps);
  EXPECT_EQ(stats.community_proposals, 5 * docs * h.config.mh_steps);
  EXPECT_GE(stats.topic_accepts, 0);
  EXPECT_LE(stats.topic_accepts, stats.topic_proposals);
  EXPECT_GT(stats.TopicAcceptRate(), 0.10);
  EXPECT_LE(stats.TopicAcceptRate(), 1.0);
  EXPECT_GT(stats.CommunityAcceptRate(), 0.10);
  EXPECT_LE(stats.CommunityAcceptRate(), 1.0);

  h.sampler.ResetMhStats();
  const MhStats cleared = h.sampler.mh_stats();
  EXPECT_EQ(cleared.topic_proposals, 0);
  EXPECT_EQ(cleared.community_accepts, 0);
}

// Dense kernels must not touch the MH counters.
TEST(GibbsSamplerTest, DenseModeLeavesMhCountersAtZero) {
  Harness h;
  h.sampler.SweepDocuments(&h.rng);
  const MhStats stats = h.sampler.mh_stats();
  EXPECT_EQ(stats.topic_proposals, 0);
  EXPECT_EQ(stats.community_proposals, 0);
}

// ---------- dense vs sparse statistical equivalence ----------

struct ModeMetrics {
  double per_link_ll = 0.0;    ///< Final link log-likelihood / #links.
  double perplexity = 0.0;     ///< Content perplexity under the profiles.
};

ModeMetrics TrainAndMeasure(const SocialGraph& graph, SamplerMode mode,
                            uint64_t seed) {
  CpdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.em_iterations = 8;
  config.seed = seed;
  config.sampler_mode = mode;
  config.mh_steps = 4;
  auto model = CpdModel::Train(graph, config);
  CPD_CHECK(model.ok());

  ModeMetrics out;
  const size_t num_links =
      graph.num_friendship_links() + graph.num_diffusion_links();
  out.per_link_ll = model->stats().link_log_likelihood.back() /
                    static_cast<double>(num_links);

  std::vector<std::vector<double>> pi, theta, phi;
  for (size_t u = 0; u < graph.num_users(); ++u) {
    const auto row = model->Membership(static_cast<UserId>(u));
    pi.emplace_back(row.begin(), row.end());
  }
  for (int c = 0; c < config.num_communities; ++c) {
    const auto row = model->ContentProfile(c);
    theta.emplace_back(row.begin(), row.end());
  }
  for (int z = 0; z < config.num_topics; ++z) {
    const auto row = model->TopicWords(z);
    phi.emplace_back(row.begin(), row.end());
  }
  std::vector<DocId> docs(graph.num_documents());
  for (size_t d = 0; d < docs.size(); ++d) docs[d] = static_cast<DocId>(d);
  out.perplexity = ContentPerplexity(graph, docs, pi, theta, phi);
  return out;
}

// The two backends target the same posterior, so trained-model quality must
// agree within MCMC noise: compare seed-averaged content perplexity and
// per-link log-likelihood. (Exact per-draw agreement is impossible — the
// backends consume randomness differently.)
TEST(SparseGibbsTest, DenseAndSparseModesAgreeStatistically) {
  const SynthResult synth = testing::MakeTinyGraph(33);
  const std::vector<uint64_t> seeds = {1, 2, 3};
  double dense_ll = 0.0, sparse_ll = 0.0;
  double dense_ppl = 0.0, sparse_ppl = 0.0;
  for (uint64_t seed : seeds) {
    const ModeMetrics dense =
        TrainAndMeasure(synth.graph, SamplerMode::kDense, seed);
    const ModeMetrics sparse =
        TrainAndMeasure(synth.graph, SamplerMode::kSparse, seed);
    dense_ll += dense.per_link_ll;
    sparse_ll += sparse.per_link_ll;
    dense_ppl += dense.perplexity;
    sparse_ppl += sparse.perplexity;
  }
  const double n = static_cast<double>(seeds.size());
  dense_ll /= n;
  sparse_ll /= n;
  dense_ppl /= n;
  sparse_ppl /= n;

  // Both must actually fit: perplexity far below the uniform-vocabulary
  // baseline, link log-likelihood above log(0.5) (random-guess energy 0).
  const double uniform_ppl =
      static_cast<double>(synth.graph.vocabulary_size());
  EXPECT_LT(dense_ppl, 0.75 * uniform_ppl);
  EXPECT_LT(sparse_ppl, 0.75 * uniform_ppl);

  // Agreement within noise.
  EXPECT_NEAR(sparse_ppl / dense_ppl, 1.0, 0.15)
      << "dense ppl " << dense_ppl << " sparse ppl " << sparse_ppl;
  EXPECT_NEAR(sparse_ll / dense_ll, 1.0, 0.15)
      << "dense ll/link " << dense_ll << " sparse ll/link " << sparse_ll;
}

// With strongly separated planted content, topic sampling should settle:
// documents generated from the same planted topic end up sharing a sampled
// topic more often than chance.
TEST(GibbsSamplerTest, TopicsBecomeMoreCoherentThanRandom) {
  Harness h;
  for (int sweep = 0; sweep < 15; ++sweep) h.sampler.SweepDocuments(&h.rng);
  // Compare documents' words overlap within sampled topic groups: documents
  // with identical sampled topic should share vocabulary mass. Cheap proxy:
  // average number of docs per used topic must exceed uniform random spread
  // significantly (topics collapse onto planted clusters).
  std::vector<int> counts(static_cast<size_t>(h.config.num_topics), 0);
  for (int32_t z : h.state.doc_topic) ++counts[static_cast<size_t>(z)];
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  const double uniform =
      static_cast<double>(h.state.num_documents) / h.config.num_topics;
  EXPECT_GT(max_count, uniform * 1.2);
}

}  // namespace
}  // namespace cpd
