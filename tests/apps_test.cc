#include <gtest/gtest.h>

#include <cmath>

#include "apps/community_ranking.h"
#include "apps/diffusion_prediction.h"
#include "apps/visualization.h"
#include "core/cpd_model.h"
#include "eval/evaluator.h"
#include "synth/queries.h"
#include "test_util.h"

namespace cpd {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // 60-user graphs sit at the detectability threshold; use a mid-size one.
    SynthConfig synth_config = testing::TinySynthConfig(201);
    synth_config.num_users = 120;
    synth_config.docs_per_user_mean = 5.0;
    synth_config.diffusion_per_doc = 0.6;
    synth_config.avg_friend_degree = 10.0;
    auto generated = GenerateSocialGraph(synth_config);
    ASSERT_TRUE(generated.ok());
    data_ = new SynthResult(std::move(*generated));
    CpdConfig config;
    config.num_communities = 4;
    config.num_topics = 6;
    config.em_iterations = 12;
    config.seed = 13;
    auto model = CpdModel::Train(data_->graph, config);
    ASSERT_TRUE(model.ok());
    model_ = new CpdModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
  }

  static SynthResult* data_;
  static CpdModel* model_;
};

SynthResult* AppsTest::data_ = nullptr;
CpdModel* AppsTest::model_ = nullptr;

TEST_F(AppsTest, DiffusionScoresAreProbabilities) {
  DiffusionPredictor predictor(*model_, data_->graph);
  for (size_t e = 0; e < std::min<size_t>(20, data_->graph.num_diffusion_links());
       ++e) {
    const DiffusionLink& link = data_->graph.diffusion_links()[e];
    const UserId u = data_->graph.document(link.i).user;
    const UserId v = data_->graph.document(link.j).user;
    const double p = predictor.Score(u, v, link.j, link.time);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST_F(AppsTest, TopicPosteriorMatchesContent) {
  DiffusionPredictor predictor(*model_, data_->graph);
  for (DocId d = 0; d < 10; ++d) {
    const auto posterior = predictor.DocumentTopicPosterior(d);
    double total = 0.0;
    for (double p : posterior) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(AppsTest, ObservedLinksOutrankRandomPairs) {
  // In-sample ranking check: the trained Eq. 18 score must rank the observed
  // diffusion links above random non-linked pairs (AUC, not mean — the
  // heavy-tailed individual features make means uninformative).
  DiffusionPredictor predictor(*model_, data_->graph);
  Rng rng(61);
  const double auc = EvaluateDiffusionAuc(
      data_->graph, data_->graph.diffusion_links(),
      predictor.AsDiffusionScorer(), &rng);
  EXPECT_GT(auc, 0.55);
}

TEST_F(AppsTest, RankingReturnsAllCommunitiesSorted) {
  CommunityRanker ranker(*model_);
  Rng rng(63);
  QueryOptions options;
  options.min_frequency = 5;
  options.min_relevant_users = 2;
  const auto queries = BuildRankingQueries(data_->graph, options, &rng);
  ASSERT_FALSE(queries.empty());
  const std::vector<WordId> query = {queries.front().word};
  const auto ranked = ranker.Rank(query);
  ASSERT_EQ(ranked.size(), 4u);
  for (size_t k = 1; k < ranked.size(); ++k) {
    EXPECT_GE(ranked[k - 1].score, ranked[k].score);
  }
  for (const RankedCommunity& entry : ranked) {
    double total = 0.0;
    for (double p : entry.topic_distribution) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(AppsTest, ParseQueryFindsVocabulary) {
  const auto words = CommunityRanker::ParseQuery(
      data_->graph.corpus().vocabulary(), "network routing");
  EXPECT_FALSE(words.empty());
  const auto none = CommunityRanker::ParseQuery(
      data_->graph.corpus().vocabulary(), "zzzunknownzzz");
  EXPECT_TRUE(none.empty());
}

TEST_F(AppsTest, CommunityUserSetsTopK) {
  const auto sets = CommunityRanker::CommunityUserSets(*model_, 2);
  ASSERT_EQ(sets.size(), 4u);
  size_t total = 0;
  for (const auto& users : sets) total += users.size();
  // Each user appears in exactly 2 sets.
  EXPECT_EQ(total, data_->graph.num_users() * 2);
}

TEST_F(AppsTest, VisualizationEdgesRespectCutoff) {
  VisualizationOptions options;
  options.strength_cutoff_factor = 1.0;
  const auto edges = CollectDiffusionEdges(*model_, options);
  EXPECT_FALSE(edges.empty());
  for (size_t e = 1; e < edges.size(); ++e) {
    EXPECT_GE(edges[e - 1].strength, edges[e].strength);
  }
  // Raising the cutoff prunes edges.
  options.strength_cutoff_factor = 3.0;
  EXPECT_LE(CollectDiffusionEdges(*model_, options).size(), edges.size());
}

TEST_F(AppsTest, DotExportIsWellFormed) {
  VisualizationOptions options;
  const std::string dot =
      ExportDiffusionDot(*model_, data_->graph.corpus().vocabulary(), options);
  EXPECT_NE(dot.find("digraph community_diffusion"), std::string::npos);
  EXPECT_NE(dot.find("c00"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST_F(AppsTest, JsonExportContainsNodesAndEdges) {
  VisualizationOptions options;
  const std::string json =
      ExportProfilesJson(*model_, data_->graph.corpus().vocabulary(), options);
  EXPECT_NE(json.find("\"communities\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("\"openness\""), std::string::npos);
}

TEST_F(AppsTest, CommunityLabelUsesVocabulary) {
  const std::string label =
      CommunityLabel(*model_, data_->graph.corpus().vocabulary(), 0, 3);
  EXPECT_FALSE(label.empty());
  // Three space-separated words.
  EXPECT_EQ(std::count(label.begin(), label.end(), ' '), 2);
}

TEST_F(AppsTest, OpennessIsBoundedFraction) {
  VisualizationOptions options;
  for (int c = 0; c < model_->num_communities(); ++c) {
    const double openness = CommunityOpenness(*model_, c, options);
    EXPECT_GE(openness, 0.0);
    EXPECT_LE(openness, 1.0);
  }
}

TEST_F(AppsTest, TopicSpecificVisualizationDiffersFromAggregate) {
  VisualizationOptions aggregate;
  VisualizationOptions topical;
  topical.topic = 0;
  const auto agg_edges = CollectDiffusionEdges(*model_, aggregate);
  const auto topic_edges = CollectDiffusionEdges(*model_, topical);
  // Topic-restricted view generally has different (fewer or re-ranked)
  // edges; at minimum strengths differ.
  bool differs = agg_edges.size() != topic_edges.size();
  if (!differs && !agg_edges.empty()) {
    differs = std::fabs(agg_edges[0].strength - topic_edges[0].strength) > 1e-12;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace cpd
