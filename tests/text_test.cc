#include <gtest/gtest.h>

#include <filesystem>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace cpd {
namespace {

// Reference pairs from Porter's published vocabulary examples.
TEST(PorterStemmerTest, ClassicExamples) {
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("caress"), "caress");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("feed"), "feed");
  EXPECT_EQ(PorterStem("agreed"), "agre");
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("bled"), "bled");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("sing"), "sing");
  EXPECT_EQ(PorterStem("conflated"), "conflat");
  EXPECT_EQ(PorterStem("troubled"), "troubl");
  EXPECT_EQ(PorterStem("sized"), "size");
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("tanned"), "tan");
  EXPECT_EQ(PorterStem("falling"), "fall");
  EXPECT_EQ(PorterStem("hissing"), "hiss");
  EXPECT_EQ(PorterStem("fizzed"), "fizz");
  EXPECT_EQ(PorterStem("failing"), "fail");
  EXPECT_EQ(PorterStem("filing"), "file");
  EXPECT_EQ(PorterStem("happy"), "happi");
  EXPECT_EQ(PorterStem("sky"), "sky");
}

TEST(PorterStemmerTest, Step2Through4Examples) {
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("rational"), "ration");
  EXPECT_EQ(PorterStem("valency"), "valenc");
  EXPECT_EQ(PorterStem("digitizer"), "digit");
  EXPECT_EQ(PorterStem("conformably"), "conform");
  EXPECT_EQ(PorterStem("radically"), "radic");
  EXPECT_EQ(PorterStem("differently"), "differ");
  EXPECT_EQ(PorterStem("vileness"), "vile");
  EXPECT_EQ(PorterStem("analogously"), "analog");
  EXPECT_EQ(PorterStem("vietnamization"), "vietnam");
  EXPECT_EQ(PorterStem("predication"), "predic");
  EXPECT_EQ(PorterStem("operator"), "oper");
  EXPECT_EQ(PorterStem("feudalism"), "feudal");
  EXPECT_EQ(PorterStem("decisiveness"), "decis");
  EXPECT_EQ(PorterStem("hopefulness"), "hope");
  EXPECT_EQ(PorterStem("formality"), "formal");
  EXPECT_EQ(PorterStem("sensitivity"), "sensit");
  EXPECT_EQ(PorterStem("triplicate"), "triplic");
  EXPECT_EQ(PorterStem("formative"), "form");
  EXPECT_EQ(PorterStem("formalize"), "formal");
  EXPECT_EQ(PorterStem("electricity"), "electr");
  EXPECT_EQ(PorterStem("hopeful"), "hope");
  EXPECT_EQ(PorterStem("goodness"), "good");
  EXPECT_EQ(PorterStem("revival"), "reviv");
  EXPECT_EQ(PorterStem("allowance"), "allow");
  EXPECT_EQ(PorterStem("inference"), "infer");
  EXPECT_EQ(PorterStem("airliner"), "airlin");
  EXPECT_EQ(PorterStem("adjustment"), "adjust");
  EXPECT_EQ(PorterStem("dependent"), "depend");
  EXPECT_EQ(PorterStem("adoption"), "adopt");
  EXPECT_EQ(PorterStem("homologous"), "homolog");
  EXPECT_EQ(PorterStem("effective"), "effect");
  EXPECT_EQ(PorterStem("bowdlerize"), "bowdler");
}

TEST(PorterStemmerTest, Step5Examples) {
  EXPECT_EQ(PorterStem("probate"), "probat");
  EXPECT_EQ(PorterStem("rate"), "rate");
  EXPECT_EQ(PorterStem("cease"), "ceas");
  EXPECT_EQ(PorterStem("controll"), "control");
  EXPECT_EQ(PorterStem("roll"), "roll");
}

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("go"), "go");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(StopwordsTest, CommonWordsDetected) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("rt"));  // Twitter artifact.
  EXPECT_FALSE(IsStopword("network"));
}

TEST(StopwordsTest, FunctionWordsDetected) {
  EXPECT_TRUE(IsFunctionWord("toward"));
  EXPECT_TRUE(IsFunctionWord("lol"));
  EXPECT_FALSE(IsFunctionWord("database"));
}

TEST(TokenizerTest, BasicPipeline) {
  const auto tokens = Tokenize("The networks are ROUTING packets!");
  // "the"/"are" are stopwords; rest stemmed + lowercased.
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "network");
  EXPECT_EQ(tokens[1], "rout");
  EXPECT_EQ(tokens[2], "packet");
}

TEST(TokenizerTest, HashtagsPreservedUnstemmed) {
  const auto tokens = Tokenize("#DeepLearning is amazing #ai");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "#deeplearning");  // Not stemmed, case folded.
  EXPECT_EQ(tokens[1], "amaz");
  EXPECT_EQ(tokens[2], "#ai");  // Hashtag min length is 1 + min_token_length.
}

TEST(TokenizerTest, UrlsAndNumbersDropped) {
  const auto tokens = Tokenize("see https://example.com 12345 details42");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "see");
  EXPECT_EQ(tokens[1], "details42");
}

TEST(TokenizerTest, PunctuationStripped) {
  const auto tokens = Tokenize("hello, world!!! (testing)");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "test");
}

TEST(TokenizerTest, OptionsDisablePipelineStages) {
  TokenizerOptions options;
  options.stem = false;
  options.remove_stopwords = false;
  options.remove_function_words = false;
  const auto tokens = Tokenize("the running dogs", options);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "running");
}

TEST(VocabularyTest, GetOrAddIsIdempotent) {
  Vocabulary vocab;
  const WordId a = vocab.GetOrAdd("alpha");
  const WordId b = vocab.GetOrAdd("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.GetOrAdd("alpha"), a);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.WordOf(a), "alpha");
}

TEST(VocabularyTest, FindMissingReturnsInvalid) {
  Vocabulary vocab;
  vocab.GetOrAdd("x");
  EXPECT_EQ(vocab.Find("y"), kInvalidWord);
  EXPECT_NE(vocab.Find("x"), kInvalidWord);
}

TEST(VocabularyTest, FrequencyAccumulates) {
  Vocabulary vocab;
  const WordId w = vocab.GetOrAdd("data");
  vocab.CountOccurrence(w);
  vocab.CountOccurrence(w, 4);
  EXPECT_EQ(vocab.Frequency(w), 5);
}

TEST(VocabularyTest, SaveLoadRoundTrip) {
  Vocabulary vocab;
  vocab.CountOccurrence(vocab.GetOrAdd("one"), 1);
  vocab.CountOccurrence(vocab.GetOrAdd("two"), 2);
  const std::string path = ::testing::TempDir() + "/cpd_vocab_test.tsv";
  ASSERT_TRUE(vocab.SaveToFile(path).ok());
  auto loaded = Vocabulary::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->Frequency(loaded->Find("two")), 2);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cpd
