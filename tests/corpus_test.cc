#include <gtest/gtest.h>

#include "text/corpus.h"

namespace cpd {
namespace {

TEST(CorpusTest, AddRawDocumentTokenizes) {
  Corpus corpus;
  const DocId d = corpus.AddRawDocument(0, 3, "wireless sensor networks");
  ASSERT_NE(d, Corpus::kInvalidDoc);
  const Document& doc = corpus.document(d);
  EXPECT_EQ(doc.user, 0);
  EXPECT_EQ(doc.time, 3);
  EXPECT_EQ(doc.words.size(), 3u);
  EXPECT_EQ(corpus.vocabulary().size(), 3u);
}

TEST(CorpusTest, ShortDocumentsDropped) {
  Corpus corpus;
  // After stopword removal only one token remains -> dropped.
  EXPECT_EQ(corpus.AddRawDocument(0, 0, "the network"), Corpus::kInvalidDoc);
  EXPECT_EQ(corpus.num_documents(), 0u);
  EXPECT_EQ(corpus.num_dropped_documents(), 1);
}

TEST(CorpusTest, TokenizedPathEnforcesMinLength) {
  Corpus corpus;
  Vocabulary vocab;
  const WordId w = vocab.GetOrAdd("x");
  corpus.SetVocabulary(vocab);
  const std::vector<WordId> one = {w};
  EXPECT_EQ(corpus.AddTokenizedDocument(0, 0, one), Corpus::kInvalidDoc);
  const std::vector<WordId> two = {w, w};
  EXPECT_NE(corpus.AddTokenizedDocument(0, 0, two), Corpus::kInvalidDoc);
}

TEST(CorpusTest, DocumentsByUserIndexed) {
  Corpus corpus;
  corpus.AddRawDocument(2, 0, "alpha beta gamma");
  corpus.AddRawDocument(0, 0, "delta epsilon zeta");
  corpus.AddRawDocument(2, 1, "eta theta iota");
  const auto& by_user = corpus.documents_by_user();
  ASSERT_GE(by_user.size(), 3u);
  EXPECT_EQ(by_user[2].size(), 2u);
  EXPECT_EQ(by_user[0].size(), 1u);
  EXPECT_TRUE(by_user[1].empty());
}

TEST(CorpusTest, TotalTokensAndFrequencies) {
  Corpus corpus;
  corpus.AddRawDocument(0, 0, "graph graph theory");
  EXPECT_EQ(corpus.total_tokens(), 3);
  const WordId graph = corpus.vocabulary().Find("graph");
  ASSERT_NE(graph, kInvalidWord);
  EXPECT_EQ(corpus.vocabulary().Frequency(graph), 2);
}

TEST(CorpusTest, RemapUsersRelabels) {
  Corpus corpus;
  corpus.AddRawDocument(1, 0, "alpha beta gamma");
  corpus.AddRawDocument(3, 0, "delta epsilon zeta");
  // Users 0 and 2 have no docs; compact to {1->0, 3->1}.
  const std::vector<UserId> remap = {-1, 0, -1, 1};
  corpus.RemapUsers(remap, 2);
  EXPECT_EQ(corpus.document(0).user, 0);
  EXPECT_EQ(corpus.document(1).user, 1);
  EXPECT_EQ(corpus.documents_by_user().size(), 2u);
}

TEST(CorpusTest, SetVocabularyPreservesIds) {
  Vocabulary vocab;
  const WordId apple = vocab.GetOrAdd("apple");
  Corpus corpus;
  corpus.SetVocabulary(vocab);
  TokenizerOptions options;
  options.stem = false;  // Keep raw surface forms to match the seeded vocab.
  const DocId d = corpus.AddRawDocument(0, 0, "apple banana cherry", options);
  ASSERT_NE(d, Corpus::kInvalidDoc);
  EXPECT_EQ(corpus.document(d).words[0], apple);
}

}  // namespace
}  // namespace cpd
