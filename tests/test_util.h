#ifndef CPD_TESTS_TEST_UTIL_H_
#define CPD_TESTS_TEST_UTIL_H_

/// \file test_util.h
/// Shared fixtures: tiny synthetic graphs sized for unit tests (seconds, not
/// minutes) and a cached medium graph for integration tests.

#include "graph/graph_builder.h"
#include "graph/social_graph.h"
#include "synth/generator.h"
#include "synth/synth_config.h"
#include "util/logging.h"

namespace cpd::testing {

/// Small planted graph: ~60 users, 4 communities, 6 topics.
inline SynthConfig TinySynthConfig(uint64_t seed = 99) {
  SynthConfig config;
  config.num_users = 60;
  config.num_communities = 4;
  config.num_topics = 6;
  config.background_vocab = 200;
  config.docs_per_user_mean = 4.0;
  config.doc_length_min = 4;
  config.doc_length_max = 8;
  config.num_time_bins = 8;
  config.avg_friend_degree = 6.0;
  config.diffusion_per_doc = 0.5;
  config.diffusion_same_topic = 0.8;  // Twitter-ish fixture.
  config.seed = seed;
  return config;
}

inline SynthResult MakeTinyGraph(uint64_t seed = 99) {
  auto result = GenerateSocialGraph(TinySynthConfig(seed));
  CPD_CHECK(result.ok());
  return std::move(*result);
}

/// Hand-built 4-user graph with known structure:
///   users 0,1 in a clique; users 2,3 in a clique; one cross link 1->2.
///   docs: one per user; diffusion 0->1 (t=0), 2->3 (t=1).
inline SocialGraph MakeHandGraph() {
  GraphBuilder builder;
  builder.SetNumUsers(4);
  std::vector<WordId> words;
  Vocabulary vocab;
  const WordId apple = vocab.GetOrAdd("apple");
  const WordId banana = vocab.GetOrAdd("banana");
  const WordId cherry = vocab.GetOrAdd("cherry");
  builder.SetVocabulary(vocab);
  // Documents (ids 0..3, one per user).
  for (UserId u = 0; u < 4; ++u) {
    words = {apple, banana, u >= 2 ? cherry : apple};
    CPD_CHECK_EQ(builder.AddTokenizedDocument(u, u, words), u);
  }
  builder.AddFriendship(0, 1);
  builder.AddFriendship(1, 0);
  builder.AddFriendship(2, 3);
  builder.AddFriendship(3, 2);
  builder.AddFriendship(1, 2);
  builder.AddDiffusion(0, 1, 0);
  builder.AddDiffusion(2, 3, 1);
  auto graph = builder.Build();
  CPD_CHECK(graph.ok());
  return std::move(*graph);
}

}  // namespace cpd::testing

#endif  // CPD_TESTS_TEST_UTIL_H_
